"""Behavioral scenarios pass the full campaign determinism matrix.

The PR 6 corner-determinism contract extended to the behavioral tier:
Monte-Carlo verification records must be byte-identical across execution
backends, across ``--shard K/N`` plus merge, and across SIGTERM/resume —
the mismatch draws are replayed from the checkpointed seed, never
re-sampled.  Also pinned here: the winner-map coupling (a behavioral
scenario verifies the synthesis winner from its own grid and therefore
shards with that tech's synthesis chain) and the manifest identity rules
(draws and seed are store identity, the kernel is an execution knob).
"""

import pytest

from repro.campaign import CampaignGrid, merge_shards, run_campaign
from repro.campaign.grid import count_shard_units, shard_scenarios
from repro.campaign.manifest import config_digest
from repro.engine.config import FlowConfig

BACKENDS = ("serial", "thread", "process", "queue")

#: Analytic screen + behavioral verification: no synthesis, fast enough to
#: sweep every backend.
GRID = CampaignGrid(resolutions=(10, 11), modes=("analytic", "behavioral"))

SYNTH_GRID = CampaignGrid(resolutions=(10,), modes=("synthesis", "behavioral"))


def _config(backend="serial", **overrides):
    base = dict(
        backend=backend,
        max_workers=2,
        budget=60,
        retarget_budget=30,
        verify_transient=False,
        behavioral_draws=4,
    )
    base.update(overrides)
    return FlowConfig(**base)


class _Interrupt(Exception):
    """Stands in for SIGTERM: raised from the progress hook mid-campaign."""


def _interrupt_after(n: int):
    seen = []

    def hook(scenario_result):
        seen.append(scenario_result)
        if len(seen) >= n:
            raise _Interrupt

    return hook


def _store_bytes(store):
    return (
        (store / "results.jsonl").read_bytes(),
        (store / "report.txt").read_bytes(),
    )


class TestBehavioralShardUnits:
    def test_without_synthesis_each_behavioral_scenario_stands_alone(self):
        scenarios = GRID.expand()
        # 2 analytic + 2 behavioral, all individually schedulable.
        assert count_shard_units(scenarios) == 4

    def test_behavioral_joins_its_techs_synthesis_unit(self):
        scenarios = SYNTH_GRID.expand()
        assert count_shard_units(scenarios) == 1
        # The single unit carries both modes: splitting them would hand the
        # behavioral scenario to a shard without the synthesis winner map.
        shard = shard_scenarios(scenarios, 1, 1)
        assert {s.mode for s in shard} == {"synthesis", "behavioral"}

    def test_sharded_behavioral_rides_with_its_synthesis_chain(self):
        grid = CampaignGrid(
            resolutions=(10, 11), modes=("synthesis", "behavioral")
        )
        scenarios = grid.expand()
        for count in (2, 3):
            owners = {
                k
                for k in range(1, count + 1)
                if shard_scenarios(scenarios, k, count)
            }
            for k in owners:
                shard = shard_scenarios(scenarios, k, count)
                if any(s.mode == "behavioral" for s in shard):
                    assert any(s.mode == "synthesis" for s in shard), (k, count)


class TestBehavioralBackendAndShardByteIdentity:
    @pytest.fixture(scope="class")
    def reference(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("behavioral-ref") / "store"
        run_campaign(GRID, config=_config(), store_dir=out)
        return out

    @pytest.mark.parametrize("backend", BACKENDS[1:])
    def test_backends_match_serial(self, reference, backend, tmp_path):
        out = tmp_path / backend
        run_campaign(GRID, config=_config(backend), store_dir=out)
        for name in ("results.jsonl", "report.txt"):
            assert (out / name).read_bytes() == (reference / name).read_bytes(), name

    @pytest.mark.parametrize("backend", ("serial", "process"))
    def test_sharded_merge_matches_unsharded(self, reference, backend, tmp_path):
        shard_dirs = []
        for k in (1, 2):
            directory = tmp_path / f"{backend}-shard{k}"
            run_campaign(
                GRID, config=_config(backend), store_dir=directory, shard=(k, 2)
            )
            shard_dirs.append(directory)
        merged = tmp_path / f"{backend}-merged"
        merge_shards(shard_dirs, out_dir=merged)
        for name in ("results.jsonl", "report.txt", "manifest.json"):
            assert (merged / name).read_bytes() == (reference / name).read_bytes(), name

    def test_interrupt_and_resume_replays_draws(self, reference, tmp_path):
        store = tmp_path / "interrupted"
        with pytest.raises(_Interrupt):
            run_campaign(
                GRID, config=_config(), store_dir=store, progress=_interrupt_after(2)
            )
        resumed = run_campaign(
            GRID, config=_config(), store_dir=store, resume=True
        )
        assert resumed.replayed_scenarios == 2
        assert _store_bytes(store) == _store_bytes(reference)


class TestSynthesisWinnerCoupling:
    @pytest.fixture(scope="class")
    def result(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("behavioral-synth") / "store"
        return run_campaign(SYNTH_GRID, config=_config(), store_dir=out), out

    def test_behavioral_verifies_the_synthesis_winner(self, result):
        campaign, _ = result
        by_mode = {record.mode: record for record in campaign.records}
        behavioral = by_mode["behavioral"]
        assert behavioral.behavioral["winner_source"] == "synthesis"
        assert behavioral.winner == by_mode["synthesis"].winner
        assert behavioral.behavioral["draws"] == 4

    def test_resume_rebuilds_the_winner_map_from_records(self, result, tmp_path):
        # Interrupt after the synthesis scenario: the behavioral scenario on
        # resume must find the winner in the *replayed* record, not fall
        # back to an analytic screen.
        _, reference = result
        store = tmp_path / "interrupted"
        with pytest.raises(_Interrupt):
            run_campaign(
                SYNTH_GRID,
                config=_config(),
                store_dir=store,
                progress=_interrupt_after(1),
            )
        resumed = run_campaign(
            SYNTH_GRID, config=_config(), store_dir=store, resume=True
        )
        assert resumed.replayed_scenarios == 1
        behavioral = next(r for r in resumed.records if r.mode == "behavioral")
        assert behavioral.behavioral["winner_source"] == "synthesis"
        assert _store_bytes(store) == _store_bytes(reference)

    def test_standalone_behavioral_screens_analytically(self, tmp_path):
        grid = CampaignGrid(resolutions=(10,), modes=("behavioral",))
        campaign = run_campaign(grid, config=_config(), store_dir=tmp_path / "s")
        (record,) = campaign.records
        assert record.behavioral["winner_source"] == "analytic"


class TestManifestIdentity:
    def test_draws_and_seed_are_store_identity(self):
        base = config_digest(_config())
        assert config_digest(_config(behavioral_draws=8)) != base
        assert config_digest(_config(behavioral_seed=202)) != base

    def test_kernel_is_an_execution_knob_not_identity(self):
        assert config_digest(_config(behavioral_kernel="legacy")) == config_digest(
            _config(behavioral_kernel="batch")
        )
