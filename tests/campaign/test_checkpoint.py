"""Checkpointed campaigns: kill/resume byte-identity and manifest guards."""

import pytest

from repro.campaign import (
    CampaignGrid,
    CheckpointStore,
    build_manifest,
    read_manifest,
    run_campaign,
)
from repro.engine.config import FlowConfig
from repro.errors import SpecificationError


def _config(**overrides) -> FlowConfig:
    base = dict(budget=60, retarget_budget=30, verify_transient=False)
    base.update(overrides)
    return FlowConfig(**base)


SYNTH_GRID = CampaignGrid(resolutions=(10, 11), modes=("synthesis",))
ANALYTIC_GRID = CampaignGrid(resolutions=(10, 11, 12), sample_rates_hz=(20e6, 40e6))


class _Interrupt(Exception):
    """Stands in for SIGTERM: raised from the progress hook mid-campaign."""


def _interrupt_after(n: int):
    seen = []

    def hook(scenario_result):
        seen.append(scenario_result)
        if len(seen) >= n:
            raise _Interrupt

    return hook


def _store_bytes(store):
    return (
        (store / "results.jsonl").read_bytes(),
        (store / "report.txt").read_bytes(),
    )


class TestResumeByteIdentity:
    @pytest.mark.parametrize("stop_after", [1, 2, 3])
    def test_analytic_interrupt_anywhere_resumes_identically(
        self, tmp_path, stop_after
    ):
        ref = tmp_path / "ref"
        run_campaign(ANALYTIC_GRID, store_dir=ref)

        store = tmp_path / f"interrupted-{stop_after}"
        with pytest.raises(_Interrupt):
            run_campaign(
                ANALYTIC_GRID, store_dir=store, progress=_interrupt_after(stop_after)
            )
        assert not (store / "results.jsonl").exists()  # nothing flushed yet

        resumed = run_campaign(ANALYTIC_GRID, store_dir=store, resume=True)
        assert resumed.replayed_scenarios == stop_after
        assert _store_bytes(store) == _store_bytes(ref)

    def test_synthesis_resume_replays_the_ledger(self, tmp_path):
        # The second scenario's warm starts come from the first scenario's
        # ledger contribution; a resume that skipped the first scenario
        # without replaying its journal would synthesize different blocks.
        ref = tmp_path / "ref"
        reference = run_campaign(SYNTH_GRID, config=_config(), store_dir=ref)
        assert reference.records[1].pool_warm_starts > 0  # ledger did matter

        store = tmp_path / "interrupted"
        with pytest.raises(_Interrupt):
            run_campaign(
                SYNTH_GRID,
                config=_config(),
                store_dir=store,
                progress=_interrupt_after(1),
            )

        resumed = run_campaign(SYNTH_GRID, config=_config(), store_dir=store, resume=True)
        assert resumed.replayed_scenarios == 1
        assert resumed.scenarios[0].replayed and resumed.scenarios[0].topology is None
        assert not resumed.scenarios[1].replayed
        assert _store_bytes(store) == _store_bytes(ref)

    def test_resume_of_a_completed_store_replays_everything(self, tmp_path):
        store = tmp_path / "store"
        first = run_campaign(SYNTH_GRID, config=_config(), store_dir=store)
        again = run_campaign(SYNTH_GRID, config=_config(), store_dir=store, resume=True)
        assert again.replayed_scenarios == len(first.records)
        assert again.records == first.records
        assert _store_bytes(store) == _store_bytes(store)  # still a valid store

    def test_fresh_run_clears_stale_checkpoints(self, tmp_path):
        store = tmp_path / "store"
        with pytest.raises(_Interrupt):
            run_campaign(
                ANALYTIC_GRID, store_dir=store, progress=_interrupt_after(2)
            )
        checkpoints = CheckpointStore(store)
        assert checkpoints.completed_prefix(ANALYTIC_GRID.expand())

        # Without resume=True the store restarts from scratch...
        fresh = run_campaign(ANALYTIC_GRID, store_dir=store)
        assert fresh.replayed_scenarios == 0

    def test_fresh_run_clears_stale_queue_acks(self, tmp_path):
        # Acks key on (spec, budgets, seeds) — not code — so a fresh
        # (non-resume) run must not inherit results a previous run acked.
        config = _config(backend="queue", max_workers=1)
        store = tmp_path / "store"
        run_campaign(SYNTH_GRID, config=config, store_dir=store)
        sentinel = store / "queue" / "stale-marker.ack.pkl"
        sentinel.write_bytes(b"left over from a previous run")
        run_campaign(SYNTH_GRID, config=config, store_dir=store)
        assert not sentinel.exists()

    def test_queue_backend_resume_is_byte_identical(self, tmp_path):
        config = _config(backend="queue", max_workers=2)
        ref = tmp_path / "ref"
        run_campaign(SYNTH_GRID, config=config, store_dir=ref)

        store = tmp_path / "interrupted"
        with pytest.raises(_Interrupt):
            run_campaign(
                SYNTH_GRID,
                config=config,
                store_dir=store,
                progress=_interrupt_after(1),
            )
        # The queue's ack files live inside the store and survive the kill.
        assert any((store / "queue").iterdir())

        run_campaign(SYNTH_GRID, config=config, store_dir=store, resume=True)
        assert _store_bytes(store) == _store_bytes(ref)


class TestManifestGuards:
    def test_resume_refuses_a_different_grid(self, tmp_path):
        store = tmp_path / "store"
        run_campaign(ANALYTIC_GRID, store_dir=store)
        other = CampaignGrid(resolutions=(10, 11, 13), sample_rates_hz=(20e6, 40e6))
        with pytest.raises(SpecificationError, match="grid digest"):
            run_campaign(other, store_dir=store, resume=True)

    def test_resume_refuses_a_different_config(self, tmp_path):
        store = tmp_path / "store"
        run_campaign(SYNTH_GRID, config=_config(), store_dir=store)
        with pytest.raises(SpecificationError, match="config digest"):
            run_campaign(
                SYNTH_GRID, config=_config(budget=61), store_dir=store, resume=True
            )

    def test_resume_refuses_a_different_shard(self, tmp_path):
        store = tmp_path / "store"
        run_campaign(ANALYTIC_GRID, store_dir=store, shard=(1, 2))
        with pytest.raises(SpecificationError, match="shard"):
            run_campaign(ANALYTIC_GRID, store_dir=store, resume=True, shard=(2, 2))

    def test_execution_knobs_do_not_poison_the_manifest(self, tmp_path):
        # Backend/workers/cache/kernel are execution-only: a campaign
        # interrupted under one backend may resume under another.
        store = tmp_path / "store"
        with pytest.raises(_Interrupt):
            run_campaign(
                ANALYTIC_GRID,
                config=FlowConfig(backend="thread", max_workers=2),
                store_dir=store,
                progress=_interrupt_after(1),
            )
        resumed = run_campaign(
            ANALYTIC_GRID,
            config=FlowConfig(backend="process", max_workers=2, eval_kernel="legacy"),
            store_dir=store,
            resume=True,
        )
        assert resumed.replayed_scenarios == 1

    def test_resume_requires_store_dir(self):
        with pytest.raises(SpecificationError, match="store_dir"):
            run_campaign(ANALYTIC_GRID, resume=True)

    def test_resume_of_an_empty_directory_is_a_fresh_run(self, tmp_path):
        store = tmp_path / "empty"
        campaign = run_campaign(ANALYTIC_GRID, store_dir=store, resume=True)
        assert campaign.replayed_scenarios == 0
        assert (store / "results.jsonl").exists()

    def test_corrupt_checkpoint_degrades_to_rerun(self, tmp_path):
        store = tmp_path / "store"
        run_campaign(ANALYTIC_GRID, store_dir=store)
        ref_bytes = _store_bytes(store)
        # Corrupt the second checkpoint: resume must replay only scenario 1
        # and re-run the rest, still reproducing the store byte-for-byte.
        (store / "checkpoints" / "00001.json").write_text("garbage")
        resumed = run_campaign(ANALYTIC_GRID, store_dir=store, resume=True)
        assert resumed.replayed_scenarios == 1
        assert _store_bytes(store) == ref_bytes

    def test_manifest_round_trips(self, tmp_path):
        from repro.campaign import write_manifest

        manifest = build_manifest(ANALYTIC_GRID, FlowConfig(), (1, 2))
        write_manifest(manifest, tmp_path)
        assert read_manifest(tmp_path) == manifest
