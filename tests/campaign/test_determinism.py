"""Campaign determinism: byte-identical reports on every backend.

The PR 1 guarantee — parallel runs rank candidates identically to serial —
lifted to whole campaigns: the JSONL results store and the comparison
report must compare byte-for-byte across the serial, thread, process and
work-queue backends, for both analytic and synthesis scenarios.
"""

import pytest

from repro.campaign import CampaignGrid, run_campaign

BACKENDS = ("serial", "thread", "process", "queue")


def _store_bytes(tmp_path, grid, config):
    campaign = run_campaign(grid, config=config)
    paths = campaign.save(tmp_path / config.backend)
    return (
        paths["results"].read_bytes(),
        paths["report"].read_bytes(),
        campaign,
    )


class TestAnalyticDeterminism:
    @pytest.fixture(scope="class")
    def stores(self, tmp_path_factory):
        from repro.engine.config import FlowConfig

        tmp_path = tmp_path_factory.mktemp("analytic")
        grid = CampaignGrid(
            resolutions=(10, 11, 12, 13), sample_rates_hz=(20e6, 40e6, 60e6)
        )
        return {
            name: _store_bytes(
                tmp_path, grid, FlowConfig(backend=name, max_workers=2)
            )
            for name in BACKENDS
        }

    def test_results_jsonl_byte_identical(self, stores):
        serial_results = stores["serial"][0]
        for name in BACKENDS[1:]:
            assert stores[name][0] == serial_results, name

    def test_report_byte_identical(self, stores):
        serial_report = stores["serial"][1]
        for name in BACKENDS[1:]:
            assert stores[name][1] == serial_report, name

    def test_nine_plus_point_grid_covered(self, stores):
        # The acceptance grid: >= 9 scenarios with identical rankings.
        campaign = stores["serial"][2]
        assert len(campaign.records) >= 9


class TestSynthesisDeterminism:
    @pytest.fixture(scope="class")
    def stores(self, tmp_path_factory):
        from repro.engine.config import FlowConfig

        tmp_path = tmp_path_factory.mktemp("synthesis")
        grid = CampaignGrid(resolutions=(10,), modes=("synthesis",))
        return {
            name: _store_bytes(
                tmp_path,
                grid,
                FlowConfig(
                    backend=name,
                    max_workers=2,
                    budget=60,
                    retarget_budget=30,
                    verify_transient=False,
                ),
            )
            for name in BACKENDS
        }

    def test_results_jsonl_byte_identical(self, stores):
        serial_results = stores["serial"][0]
        for name in BACKENDS[1:]:
            assert stores[name][0] == serial_results, name

    def test_report_byte_identical(self, stores):
        serial_report = stores["serial"][1]
        for name in BACKENDS[1:]:
            assert stores[name][1] == serial_report, name

    def test_synthesis_accounting_identical(self, stores):
        # Not just the rankings: the cold/retarget/pool split is part of
        # the record, so the *plan* must match across backends too.
        records = {name: stores[name][2].records for name in BACKENDS}
        for name in BACKENDS[1:]:
            assert records[name] == records["serial"], name
