"""Corner-scoped determinism: sharding a corner sweep never changes bytes.

The PR 6 tentpole: the ledger's warm-start donor pool is scoped per
technology corner, which makes each corner's synthesis chain a
ledger-independent shard unit.  The contract tested here:

* a multi-corner synthesis campaign produces byte-identical records and
  reports on every backend (serial/thread/process/queue);
* running it corner-sharded (one shard per corner unit) and merging
  reproduces the unsharded store byte-for-byte — the sharding PR 4 had to
  forbid for synthesis grids;
* donors never cross corner scopes.
"""

import pytest

from repro.campaign import CampaignGrid, merge_shards, run_campaign
from repro.campaign.grid import count_shard_units, shard_scenarios
from repro.campaign.runner import SynthesisLedger
from repro.engine.config import FlowConfig
from repro.tech import CMOS025
from repro.tech.process import CMOS025_SLOW

BACKENDS = ("serial", "thread", "process", "queue")

GRID = CampaignGrid(
    resolutions=(10,),
    modes=("synthesis",),
    corners=(("nom", CMOS025), ("slow", CMOS025_SLOW)),
)


def _config(backend="serial", **overrides):
    base = dict(
        backend=backend,
        max_workers=2,
        budget=60,
        retarget_budget=30,
        verify_transient=False,
    )
    base.update(overrides)
    return FlowConfig(**base)


class TestCornerShardUnits:
    def test_each_corner_is_its_own_unit(self):
        scenarios = GRID.expand()
        assert count_shard_units(scenarios) == 2
        for k in (1, 2):
            shard = shard_scenarios(scenarios, k, 2)
            corners = {s.corner for s in shard}
            assert len(shard) == 1
            assert len(corners) == 1
        covered = {s.corner for k in (1, 2) for s in shard_scenarios(GRID.expand(), k, 2)}
        assert covered == {"nom", "slow"}

    def test_one_corner_never_splits(self):
        grid = CampaignGrid(
            resolutions=(10, 11),
            modes=("synthesis",),
            corners=(("nom", CMOS025), ("slow", CMOS025_SLOW)),
        )
        scenarios = grid.expand()
        for count in (2, 3):
            for corner in ("nom", "slow"):
                owners = {
                    k
                    for k in range(1, count + 1)
                    if any(
                        s.corner == corner
                        for s in shard_scenarios(scenarios, k, count)
                    )
                }
                assert len(owners) == 1, (corner, count)

    def test_mixed_mode_units_count_analytics_individually(self):
        grid = CampaignGrid(
            resolutions=(10, 11),
            modes=("analytic", "synthesis"),
            corners=(("nom", CMOS025), ("slow", CMOS025_SLOW)),
        )
        # 4 analytic scenarios + 2 per-corner synthesis chains.
        assert count_shard_units(grid.expand()) == 6


class TestCornerShardedByteIdentity:
    @pytest.fixture(scope="class")
    def reference(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("corner-ref") / "store"
        run_campaign(GRID, config=_config(), store_dir=out)
        return out

    @pytest.mark.parametrize("backend", BACKENDS[1:])
    def test_backends_match_serial(self, reference, backend, tmp_path):
        out = tmp_path / backend
        run_campaign(GRID, config=_config(backend), store_dir=out)
        for name in ("results.jsonl", "report.txt"):
            assert (out / name).read_bytes() == (reference / name).read_bytes(), name

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_corner_sharded_merge_matches_unsharded(
        self, reference, backend, tmp_path
    ):
        shard_dirs = []
        for k in (1, 2):
            directory = tmp_path / f"{backend}-shard{k}"
            run_campaign(
                GRID, config=_config(backend), store_dir=directory, shard=(k, 2)
            )
            shard_dirs.append(directory)
        merged = tmp_path / f"{backend}-merged"
        merge_shards(shard_dirs, out_dir=merged)
        for name in ("results.jsonl", "report.txt", "manifest.json"):
            assert (merged / name).read_bytes() == (reference / name).read_bytes(), name


class TestDonorScoping:
    def test_donors_never_cross_corner_scopes(self):
        ledger = SynthesisLedger()
        run_campaign(GRID, config=_config(), ledger=ledger)
        assert ledger.donors  # synthesis happened
        assert len(ledger._donor_scopes) == len(ledger.donors)
        scopes = set(ledger._donor_scopes)
        assert scopes <= {"cmos025", "cmos025_slow"}
        for scope in scopes:
            visible = ledger.donors_for(scope)
            for donor in visible:
                index = ledger.donors.index(donor)
                assert ledger._donor_scopes[index] == scope

    def test_unscoped_legacy_donors_stay_globally_visible(self):
        ledger = SynthesisLedger()
        run_campaign(GRID, config=_config(), ledger=ledger)
        donor = ledger.donors[0]
        legacy = SynthesisLedger()
        legacy.replay([("fp", "spec-key", donor)])  # pre-scoping journal entry
        assert legacy.donors_for("cmos025") == (donor,)
        assert legacy.donors_for("anything") == (donor,)

    def test_journal_replay_reconstructs_scopes(self, tmp_path):
        ledger = SynthesisLedger()
        ledger.journal = []
        run_campaign(GRID, config=_config(), ledger=ledger, store_dir=tmp_path / "s")
        # The store's checkpoints carry the journals; a fresh ledger built
        # from replay must agree scope-for-scope with the live one.
        fresh = SynthesisLedger()
        from repro.campaign.checkpoint import CheckpointStore

        for scenario, record, journal in CheckpointStore(
            tmp_path / "s"
        ).completed_prefix(GRID.expand()):
            fresh.replay(journal)
        assert fresh._donor_scopes == ledger._donor_scopes
        assert [d.final.power for d in fresh.donors] == [
            d.final.power for d in ledger.donors
        ]
