"""Campaign records must be byte-identical across evaluation kernels.

The compiled kernel is the default (`FlowConfig.eval_kernel`), so a
campaign run through it must write exactly the bytes a legacy-kernel run
writes — and stay byte-identical across execution backends, extending the
PR 1/PR 2 determinism guarantees to the kernel layer.
"""

import pytest

from repro.campaign import CampaignGrid, run_campaign
from repro.engine.config import SPECULATION_AUTO, FlowConfig


def _store_bytes(tmp_path, label, **config_kwargs):
    config = FlowConfig(
        budget=60,
        retarget_budget=30,
        verify_transient=False,
        **config_kwargs,
    )
    campaign = run_campaign(
        CampaignGrid(resolutions=(10,), modes=("synthesis",)), config=config
    )
    paths = campaign.save(tmp_path / label)
    return paths["results"].read_bytes(), paths["report"].read_bytes()


@pytest.fixture(scope="module")
def stores(tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("kernel-determinism")
    return {
        "legacy-serial": _store_bytes(
            tmp_path, "legacy-serial", eval_kernel="legacy"
        ),
        "compiled-serial": _store_bytes(
            tmp_path, "compiled-serial", eval_kernel="compiled"
        ),
        "compiled-thread": _store_bytes(
            tmp_path,
            "compiled-thread",
            eval_kernel="compiled",
            backend="thread",
            max_workers=2,
        ),
        "speculative-serial": _store_bytes(
            tmp_path,
            "speculative-serial",
            eval_kernel="compiled",
            eval_speculation=6,
        ),
    }


def test_compiled_matches_legacy_bytes(stores):
    assert stores["compiled-serial"] == stores["legacy-serial"]


def test_compiled_thread_matches_legacy_bytes(stores):
    assert stores["compiled-thread"] == stores["legacy-serial"]


def test_speculative_matches_legacy_bytes(stores):
    assert stores["speculative-serial"] == stores["legacy-serial"]


def test_default_config_uses_compiled_kernel():
    config = FlowConfig()
    assert config.eval_kernel == "compiled"
    # Auto: synthesize_mdac resolves the depth from the DC kernel — 0 on
    # the default chained walk, 8 on the batched lockstep kernel.
    assert config.eval_speculation == SPECULATION_AUTO
