"""Telemetry must observe without perturbing: byte-identical stores.

The observability layer's core contract — ``FlowConfig.telemetry`` may
change *which side artifacts* a campaign store grows (``metrics.json``,
``traces/``) but never a byte of the deterministic record set
(``results.jsonl`` / ``report.txt`` / ``manifest.json``), on any backend.
"""

import json

import pytest

from repro.campaign import CampaignGrid, run_campaign
from repro.engine.config import FlowConfig
from repro.obs import metrics as obs
from repro.obs.trace import TRACE_DIRNAME, trace_enabled

MODES = ("off", "metrics", "trace")
DETERMINISTIC = ("results.jsonl", "report.txt", "manifest.json")


def _run(tmp_path, name, **config_kwargs):
    store = tmp_path / name
    grid = CampaignGrid(resolutions=(10,), modes=("synthesis",))
    config = FlowConfig(
        budget=60,
        retarget_budget=30,
        verify_transient=False,
        **config_kwargs,
    )
    run_campaign(grid, config=config, store_dir=store)
    return store


class TestModeDeterminism:
    @pytest.fixture(scope="class")
    def stores(self, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("telemetry")
        return {
            mode: _run(tmp_path, mode, telemetry=mode) for mode in MODES
        }

    def test_deterministic_artifacts_identical_across_modes(self, stores):
        for artifact in DETERMINISTIC:
            baseline = (stores["off"] / artifact).read_bytes()
            for mode in ("metrics", "trace"):
                assert (stores[mode] / artifact).read_bytes() == baseline, (
                    f"{artifact} differs under telemetry={mode}"
                )

    def test_metrics_json_written_unless_off(self, stores):
        assert not (stores["off"] / obs.METRICS_FILENAME).exists()
        for mode in ("metrics", "trace"):
            payload = json.loads(
                (stores[mode] / obs.METRICS_FILENAME).read_text()
            )
            assert payload["schema"] == 1
            assert payload["telemetry"] == mode
            assert payload["sources"]["local"] == 1
            counters = payload["metrics"]["counters"]
            assert counters["campaign.scenarios"] == 1
            assert counters["scheduler.jobs_dispatched"] >= 1
            assert counters["scheduler.waves"] >= 1

    def test_traces_written_only_in_trace_mode(self, stores):
        for mode in ("off", "metrics"):
            assert not list((stores[mode] / TRACE_DIRNAME).glob("*.jsonl"))
        trace_files = list((stores["trace"] / TRACE_DIRNAME).glob("*.jsonl"))
        assert trace_files
        names = set()
        for path in trace_files:
            for line in path.read_text().splitlines():
                names.add(json.loads(line)["name"])
        assert {"campaign.run", "campaign.scenario", "synth.wave", "synth.job"} <= names

    def test_telemetry_excluded_from_the_manifest(self, stores):
        manifest = json.loads((stores["metrics"] / "manifest.json").read_text())
        assert "telemetry" not in json.dumps(manifest)

    def test_mode_and_tracing_restored_after_the_run(self, stores):
        # run_campaign scopes its telemetry: the conftest default survives.
        assert obs.telemetry_mode() == "metrics"
        assert not trace_enabled()


class TestBackendDeterminism:
    def test_process_backend_traces_match_serial_bytes(self, tmp_path):
        serial = _run(tmp_path, "serial-off", telemetry="off")
        pooled = _run(
            tmp_path, "pool-trace",
            telemetry="trace", backend="process", max_workers=2,
        )
        for artifact in DETERMINISTIC:
            assert (pooled / artifact).read_bytes() == (
                serial / artifact
            ).read_bytes(), artifact
        payload = json.loads((pooled / obs.METRICS_FILENAME).read_text())
        # Pool workers spool their snapshots into the store; the runner
        # folds them in next to its own live registry.
        assert payload["sources"]["spooled"] >= 1
        assert payload["metrics"]["counters"]["scheduler.job_executions"] >= 1
