"""Campaign grid expansion and CLI axis parsing."""

import pytest

from repro.campaign.grid import (
    CampaignGrid,
    parse_corner_axis,
    parse_int_axis,
    parse_rate_axis,
)
from repro.errors import SpecificationError
from repro.tech import CMOS025, CMOS025_SLOW, CORNERS


class TestGrid:
    def test_expansion_order_and_size(self):
        grid = CampaignGrid(
            resolutions=(10, 11),
            sample_rates_hz=(20e6, 40e6),
            modes=("analytic", "synthesis"),
        )
        scenarios = grid.expand()
        assert len(scenarios) == grid.size == 8
        assert [s.index for s in scenarios] == list(range(8))
        # Resolutions vary fastest, then rates, then modes.
        assert [
            (s.mode, s.spec.sample_rate_hz, s.spec.resolution_bits)
            for s in scenarios[:4]
        ] == [
            ("analytic", 20e6, 10),
            ("analytic", 20e6, 11),
            ("analytic", 40e6, 10),
            ("analytic", 40e6, 11),
        ]
        assert scenarios[4].mode == "synthesis"

    def test_expansion_is_deterministic(self):
        grid = CampaignGrid(resolutions=(10, 12), sample_rates_hz=(40e6,))
        assert grid.expand() == grid.expand()

    def test_labels_are_unique_and_stable(self):
        grid = CampaignGrid(
            resolutions=(10, 11, 12), sample_rates_hz=(20e6, 40e6)
        )
        labels = [s.label for s in grid.expand()]
        assert len(set(labels)) == len(labels)
        assert "k10_20M_analytic" in labels

    def test_empty_axis_rejected(self):
        with pytest.raises(SpecificationError):
            CampaignGrid(resolutions=())
        with pytest.raises(SpecificationError):
            CampaignGrid(resolutions=(12,), modes=())

    def test_duplicate_axis_values_rejected(self):
        with pytest.raises(SpecificationError):
            CampaignGrid(resolutions=(12, 12))
        with pytest.raises(SpecificationError):
            CampaignGrid(resolutions=(12,), sample_rates_hz=(40e6, 40e6))

    def test_unknown_mode_rejected(self):
        with pytest.raises(SpecificationError):
            CampaignGrid(resolutions=(12,), modes=("spice",))


class TestCornerAxis:
    def test_two_corner_grid_expands_corner_major(self):
        grid = CampaignGrid(
            resolutions=(10, 11),
            corners=(("nom", CMOS025), ("slow", CMOS025_SLOW)),
        )
        scenarios = grid.expand()
        assert len(scenarios) == grid.size == 4
        # Corners are the slowest axis: the whole nominal block first.
        assert [(s.corner, s.spec.resolution_bits) for s in scenarios] == [
            ("nom", 10),
            ("nom", 11),
            ("slow", 10),
            ("slow", 11),
        ]
        # Every scenario's spec carries its corner's technology...
        assert [s.spec.tech.name for s in scenarios] == [
            "cmos025",
            "cmos025",
            "cmos025_slow",
            "cmos025_slow",
        ]
        # ...and non-nominal corners are visible in the label.
        assert scenarios[0].label == "k10_40M_analytic"
        assert scenarios[2].label == "k10_40M_analytic_slow"

    def test_registered_corners_have_distinct_technologies(self):
        assert set(CORNERS) >= {"nom", "slow"}
        assert CORNERS["nom"] is CMOS025
        assert CORNERS["slow"] is CMOS025_SLOW
        assert CMOS025_SLOW.vdd < CMOS025.vdd
        assert CMOS025_SLOW.nmos.vth0 > CMOS025.nmos.vth0
        assert CMOS025_SLOW.nmos.kp < CMOS025.nmos.kp

    def test_duplicate_corner_tags_rejected(self):
        with pytest.raises(SpecificationError):
            CampaignGrid(
                resolutions=(12,),
                corners=(("nom", CMOS025), ("nom", CMOS025_SLOW)),
            )

    def test_parse_corner_axis(self):
        assert parse_corner_axis("nom,slow") == (
            ("nom", CMOS025),
            ("slow", CMOS025_SLOW),
        )
        assert parse_corner_axis("slow") == (("slow", CMOS025_SLOW),)

    def test_parse_corner_axis_rejects_unknown_and_empty(self):
        with pytest.raises(SpecificationError, match="nom, slow"):
            parse_corner_axis("nom,ff")
        with pytest.raises(SpecificationError, match="empty"):
            parse_corner_axis(" , ")


class TestAxisParsing:
    def test_int_range(self):
        assert parse_int_axis("10-13") == (10, 11, 12, 13)

    def test_int_list_and_mixed(self):
        assert parse_int_axis("10,12,13") == (10, 12, 13)
        assert parse_int_axis("8,10-12") == (8, 10, 11, 12)

    def test_int_garbage_rejected(self):
        for bad in ("", "abc", "13-10", "10-"):
            with pytest.raises(SpecificationError):
                parse_int_axis(bad)

    def test_rates_in_msps(self):
        assert parse_rate_axis("20,40") == (20e6, 40e6)
        assert parse_rate_axis("2.5") == (2.5e6,)

    def test_rate_garbage_rejected(self):
        for bad in ("", "fast", "-40", "0"):
            with pytest.raises(SpecificationError):
                parse_rate_axis(bad)
