"""The ``repro-adc campaign`` command and the engine-era help text."""

import json

import pytest

from repro.cli import EPILOG, main


class TestCampaignCommand:
    def test_campaign_writes_store(self, tmp_path, capsys):
        out = tmp_path / "store"
        assert (
            main(
                [
                    "campaign",
                    "--bits",
                    "10-12",
                    "--rates",
                    "20,40,60",
                    "--quiet",
                    "--out",
                    str(out),
                ]
            )
            == 0
        )
        stdout = capsys.readouterr().out
        assert "Campaign comparison" in stdout
        assert "FoM" in stdout

        lines = (out / "results.jsonl").read_text().splitlines()
        assert len(lines) == 9  # 3 resolutions x 3 rates
        record = json.loads(lines[0])
        assert record["mode"] == "analytic"
        assert record["winner"]
        assert (out / "report.txt").exists()
        assert (out / "meta.json").exists()

    def test_campaign_report_only_without_out(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)  # any accidental writes land here
        assert main(["campaign", "--bits", "12", "--quiet"]) == 0
        assert "Campaign comparison" in capsys.readouterr().out
        assert list(tmp_path.iterdir()) == []

    def test_campaign_bad_axis_errors(self):
        from repro.errors import SpecificationError

        with pytest.raises(SpecificationError):
            main(["campaign", "--bits", "banana", "--quiet"])


class TestHelpEpilog:
    def test_epilog_describes_flowconfig_era_flags(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        help_text = capsys.readouterr().out
        # The epilog must describe the engine flags of FlowConfig, not the
        # pre-engine flow, and advertise every registered backend.
        for fragment in (
            "--backend",
            "serial",
            "thread",
            "process",
            "--cache-dir",
            "REPRO_ADC_CACHE",
            "--retarget-budget",
            "campaign",
            "results.jsonl",
        ):
            assert fragment in help_text, f"--help is missing {fragment!r}"

    def test_epilog_flags_exist_on_parser(self):
        # Every --flag the epilog mentions must actually be accepted by the
        # flow commands, so the help text cannot rot.
        import re

        flags = set(re.findall(r"--[a-z-]+", EPILOG))
        with pytest.raises(SystemExit):
            main(["explore", "--help"])
        # argparse exits before parsing; inspect the parser by running
        # each flag through a real invocation instead.
        assert flags  # sanity
        argv = ["campaign", "--bits", "12", "--quiet"]
        for flag in sorted(flags - {"--backend", "--modes", "--bits", "--rates"}):
            if flag in ("--no-verify",):
                argv += [flag]
            elif flag in ("--workers",):
                argv += [flag, "1"]
            elif flag in ("--budget", "--retarget-budget"):
                argv += [flag, "50"]
            elif flag == "--cache-dir":
                continue  # exercised in runner tests; avoid disk writes here
            elif flag == "--out":
                continue
        assert main(argv) == 0
