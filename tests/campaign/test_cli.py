"""The ``repro-adc campaign`` command and the engine-era help text."""

import json

import pytest

from repro.cli import EPILOG, main


class TestCampaignCommand:
    def test_campaign_writes_store(self, tmp_path, capsys):
        out = tmp_path / "store"
        assert (
            main(
                [
                    "campaign",
                    "--bits",
                    "10-12",
                    "--rates",
                    "20,40,60",
                    "--quiet",
                    "--out",
                    str(out),
                ]
            )
            == 0
        )
        stdout = capsys.readouterr().out
        assert "Campaign comparison" in stdout
        assert "FoM" in stdout

        lines = (out / "results.jsonl").read_text().splitlines()
        assert len(lines) == 9  # 3 resolutions x 3 rates
        record = json.loads(lines[0])
        assert record["mode"] == "analytic"
        assert record["winner"]
        assert (out / "report.txt").exists()
        assert (out / "meta.json").exists()

    def test_campaign_report_only_without_out(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)  # any accidental writes land here
        assert main(["campaign", "--bits", "12", "--quiet"]) == 0
        assert "Campaign comparison" in capsys.readouterr().out
        assert list(tmp_path.iterdir()) == []

    def test_campaign_bad_axis_is_a_friendly_error(self, capsys):
        assert main(["campaign", "--bits", "banana", "--quiet"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro-adc: error:")
        assert "banana" in err and "Traceback" not in err

    def test_campaign_writes_manifest(self, tmp_path):
        out = tmp_path / "store"
        assert (
            main(["campaign", "--bits", "10-11", "--quiet", "--out", str(out)]) == 0
        )
        assert (out / "manifest.json").exists()
        assert (out / "checkpoints").is_dir()

    def test_bad_shard_spec_is_a_friendly_error(self, capsys):
        assert (
            main(["campaign", "--bits", "10-11", "--quiet", "--shard", "3/2"]) == 2
        )
        err = capsys.readouterr().err
        assert err.startswith("repro-adc: error:")
        assert "shard" in err

    def test_resume_without_out_errors(self, capsys):
        with pytest.raises(SystemExit):
            main(["campaign", "--bits", "10-11", "--quiet", "--resume"])
        assert "--resume requires --out" in capsys.readouterr().err


class TestShardMergeCommands:
    def test_shard_run_and_merge_match_unsharded(self, tmp_path, capsys):
        args = ["campaign", "--bits", "10-12", "--rates", "20,40", "--quiet"]
        assert main(args + ["--out", str(tmp_path / "ref")]) == 0
        for k in (1, 2):
            assert (
                main(
                    args
                    + ["--out", str(tmp_path / f"shard{k}"), "--shard", f"{k}/2"]
                )
                == 0
            )
        assert (
            main(
                [
                    "merge",
                    str(tmp_path / "shard1"),
                    str(tmp_path / "shard2"),
                    "--out",
                    str(tmp_path / "merged"),
                ]
            )
            == 0
        )
        assert "Campaign comparison" in capsys.readouterr().out
        for name in ("results.jsonl", "report.txt", "manifest.json"):
            assert (tmp_path / "merged" / name).read_bytes() == (
                tmp_path / "ref" / name
            ).read_bytes(), name

    def test_merge_refuses_mismatched_stores(self, tmp_path, capsys):
        base = ["--rates", "20,40", "--quiet"]
        assert (
            main(
                ["campaign", "--bits", "10-12", *base]
                + ["--out", str(tmp_path / "a"), "--shard", "1/2"]
            )
            == 0
        )
        assert (
            main(
                ["campaign", "--bits", "10-13", *base]
                + ["--out", str(tmp_path / "b"), "--shard", "2/2"]
            )
            == 0
        )
        capsys.readouterr()  # drop the campaign progress output
        assert main(["merge", str(tmp_path / "a"), str(tmp_path / "b")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro-adc: error:")
        assert "grid digest" in err

    def test_resume_replays_and_reports(self, tmp_path, capsys):
        out = str(tmp_path / "store")
        args = ["campaign", "--bits", "10-11", "--quiet", "--out", out]
        assert main(args) == 0
        first = (tmp_path / "store" / "results.jsonl").read_bytes()
        assert main(args + ["--resume"]) == 0
        err = capsys.readouterr().err
        assert "replayed from checkpoints" in err
        assert (tmp_path / "store" / "results.jsonl").read_bytes() == first


class TestFriendlyErrors:
    """Bad backend/queue-dir/store-dir combinations fail with one line."""

    def test_queue_dir_without_queue_backend_names_valid_choices(
        self, tmp_path, capsys
    ):
        assert (
            main(
                [
                    "campaign",
                    "--bits",
                    "10",
                    "--quiet",
                    "--queue-dir",
                    str(tmp_path / "q"),
                ]
            )
            == 2
        )
        err = capsys.readouterr().err
        assert err.startswith("repro-adc: error:")
        assert "--backend queue" in err
        assert "process, queue, serial, thread" in err

    def test_out_path_collision_is_a_friendly_error(self, tmp_path, capsys):
        collision = tmp_path / "occupied"
        collision.write_text("a file, not a store", encoding="utf-8")
        assert (
            main(["campaign", "--bits", "10", "--quiet", "--out", str(collision)])
            == 2
        )
        err = capsys.readouterr().err
        assert err.startswith("repro-adc: error:")
        assert "not a directory" in err

    def test_unknown_corner_names_registered_tags(self, capsys):
        assert (
            main(["campaign", "--bits", "10", "--quiet", "--corners", "ff"]) == 2
        )
        err = capsys.readouterr().err
        assert err.startswith("repro-adc: error:")
        assert "nom" in err and "slow" in err

    def test_merge_of_non_store_directory_is_friendly(self, tmp_path, capsys):
        assert main(["merge", str(tmp_path)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro-adc: error:")
        assert "manifest.json" in err


class TestSpeculationFlags:
    def test_no_speculation_overrides_depth(self):
        from repro.cli import _resolve_speculation

        class Args:
            speculation = 8
            no_speculation = True

        assert _resolve_speculation(Args()) == 0

    def test_unset_speculation_uses_library_default(self):
        from repro.cli import _resolve_speculation
        from repro.engine.config import FlowConfig

        class Args:
            speculation = None
            no_speculation = False

        assert _resolve_speculation(Args()) == FlowConfig.eval_speculation

    def test_flags_accepted_on_campaign(self, capsys):
        assert (
            main(
                [
                    "campaign",
                    "--bits",
                    "10",
                    "--quiet",
                    "--speculation",
                    "8",
                    "--no-speculation",
                ]
            )
            == 0
        )
        assert "Campaign comparison" in capsys.readouterr().out

    def test_help_documents_default_and_escape_hatch(self, capsys):
        with pytest.raises(SystemExit):
            main(["campaign", "--help"])
        help_text = capsys.readouterr().out
        assert "--no-speculation" in help_text
        assert "--speculation" in help_text
        assert "default" in help_text


class TestShardUnitGuard:
    def test_shard_count_above_units_is_a_friendly_error(self, capsys):
        # One synthesis corner = one ledger-independent unit; asking for
        # two shards leaves one empty, so the CLI refuses up front.
        assert (
            main(
                [
                    "campaign",
                    "--bits",
                    "10",
                    "--modes",
                    "synthesis",
                    "--quiet",
                    "--shard",
                    "2/2",
                ]
            )
            == 2
        )
        err = capsys.readouterr().err
        assert err.startswith("repro-adc: error:")
        assert "ledger-independent" in err
        assert "corner" in err and "Traceback" not in err

    def test_corner_sweep_unlocks_synthesis_sharding(self, tmp_path, capsys):
        # Two corners = two synthesis units: the same shard spec that the
        # guard refuses above is valid once the grid sweeps corners.
        out = tmp_path / "shard1"
        assert (
            main(
                [
                    "campaign",
                    "--bits",
                    "10",
                    "--modes",
                    "synthesis",
                    "--corners",
                    "nom,slow",
                    "--budget",
                    "60",
                    "--retarget-budget",
                    "30",
                    "--no-verify",
                    "--quiet",
                    "--shard",
                    "1/2",
                    "--out",
                    str(out),
                ]
            )
            == 0
        )
        capsys.readouterr()
        lines = (out / "results.jsonl").read_text().splitlines()
        assert len(lines) == 1  # exactly one corner's synthesis chain


class TestCornerAxis:
    def test_corner_campaign_runs_and_labels_records(self, tmp_path, capsys):
        out = tmp_path / "store"
        assert (
            main(
                [
                    "campaign",
                    "--bits",
                    "10-11",
                    "--corners",
                    "nom,slow",
                    "--quiet",
                    "--out",
                    str(out),
                ]
            )
            == 0
        )
        lines = (out / "results.jsonl").read_text().splitlines()
        assert len(lines) == 4  # 2 resolutions x 2 corners
        records = [json.loads(line) for line in lines]
        assert {r["corner"] for r in records} == {"nom", "slow"}
        assert {r["tech"] for r in records} == {"cmos025", "cmos025_slow"}
        assert "k10_40M_analytic_slow" in {r["label"] for r in records}


class TestHelpEpilog:
    def test_epilog_describes_flowconfig_era_flags(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        help_text = capsys.readouterr().out
        # The epilog must describe the engine flags of FlowConfig, not the
        # pre-engine flow, and advertise every registered backend.
        for fragment in (
            "--backend",
            "serial",
            "thread",
            "process",
            "--cache-dir",
            "REPRO_ADC_CACHE",
            "--retarget-budget",
            "campaign",
            "results.jsonl",
        ):
            assert fragment in help_text, f"--help is missing {fragment!r}"

    def test_epilog_flags_exist_on_parser(self):
        # Every --flag the epilog mentions must actually be accepted by the
        # flow commands, so the help text cannot rot.
        import re

        flags = set(re.findall(r"--[a-z-]+", EPILOG))
        with pytest.raises(SystemExit):
            main(["explore", "--help"])
        # argparse exits before parsing; inspect the parser by running
        # each flag through a real invocation instead.
        assert flags  # sanity
        argv = ["campaign", "--bits", "12", "--quiet"]
        for flag in sorted(flags - {"--backend", "--modes", "--bits", "--rates"}):
            if flag in ("--no-verify",):
                argv += [flag]
            elif flag in ("--workers",):
                argv += [flag, "1"]
            elif flag in ("--budget", "--retarget-budget"):
                argv += [flag, "50"]
            elif flag == "--cache-dir":
                continue  # exercised in runner tests; avoid disk writes here
            elif flag == "--out":
                continue
        assert main(argv) == 0
