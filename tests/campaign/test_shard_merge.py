"""Deterministic sharding and shard-store merging.

The acceptance contract: a grid split across N shards and merged produces a
results store and report byte-identical to a single unsharded serial run.
"""

import pytest

from repro.campaign import (
    CampaignGrid,
    merge_shards,
    parse_shard,
    run_campaign,
    shard_scenarios,
)
from repro.engine.config import FlowConfig
from repro.errors import SpecificationError

ANALYTIC_GRID = CampaignGrid(resolutions=(10, 11, 12), sample_rates_hz=(20e6, 40e6))


def _config(**overrides) -> FlowConfig:
    base = dict(budget=60, retarget_budget=30, verify_transient=False)
    base.update(overrides)
    return FlowConfig(**base)


class TestShardPartition:
    def test_shards_cover_the_grid_exactly_once(self):
        scenarios = ANALYTIC_GRID.expand()
        for count in (1, 2, 3, 4, 7):
            shards = [
                shard_scenarios(scenarios, k, count) for k in range(1, count + 1)
            ]
            indices = sorted(s.index for shard in shards for s in shard)
            assert indices == list(range(len(scenarios)))

    def test_partition_is_deterministic(self):
        scenarios = ANALYTIC_GRID.expand()
        assert shard_scenarios(scenarios, 2, 3) == shard_scenarios(scenarios, 2, 3)

    def test_shard_preserves_expansion_order(self):
        scenarios = ANALYTIC_GRID.expand()
        for k in (1, 2, 3):
            selected = shard_scenarios(scenarios, k, 3)
            assert [s.index for s in selected] == sorted(s.index for s in selected)

    def test_synthesis_scenarios_stay_on_one_shard(self):
        # The ledger chains synthesis scenarios; splitting the chain would
        # change warm starts and break sharded-vs-unsharded byte-identity.
        grid = CampaignGrid(
            resolutions=(10, 11, 12), modes=("analytic", "synthesis")
        )
        scenarios = grid.expand()
        for count in (2, 3):
            owners = set()
            for k in range(1, count + 1):
                if any(
                    s.mode == "synthesis"
                    for s in shard_scenarios(scenarios, k, count)
                ):
                    owners.add(k)
            assert len(owners) == 1

    def test_parse_shard(self):
        assert parse_shard("1/1") == (1, 1)
        assert parse_shard("2/3") == (2, 3)
        for bad in ("0/2", "3/2", "banana", "1", "1/0", "-1/2"):
            with pytest.raises(SpecificationError):
                parse_shard(bad)

    def test_out_of_range_shard_rejected(self):
        with pytest.raises(SpecificationError):
            shard_scenarios(ANALYTIC_GRID.expand(), 3, 2)


class TestMergeByteIdentity:
    @pytest.fixture(scope="class")
    def stores(self, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("shards")
        ref = tmp_path / "ref"
        run_campaign(ANALYTIC_GRID, store_dir=ref)
        shard_dirs = []
        for k in (1, 2, 3):
            directory = tmp_path / f"shard{k}"
            run_campaign(ANALYTIC_GRID, store_dir=directory, shard=(k, 3))
            shard_dirs.append(directory)
        merged = tmp_path / "merged"
        merge_shards(shard_dirs, out_dir=merged)
        return {"ref": ref, "shards": shard_dirs, "merged": merged}

    def test_results_jsonl_byte_identical(self, stores):
        assert (stores["merged"] / "results.jsonl").read_bytes() == (
            stores["ref"] / "results.jsonl"
        ).read_bytes()

    def test_report_byte_identical(self, stores):
        assert (stores["merged"] / "report.txt").read_bytes() == (
            stores["ref"] / "report.txt"
        ).read_bytes()

    def test_merged_manifest_matches_unsharded(self, stores):
        assert (stores["merged"] / "manifest.json").read_bytes() == (
            stores["ref"] / "manifest.json"
        ).read_bytes()

    def test_shard_reports_are_labelled(self, stores):
        shard_report = (stores["shards"][0] / "report.txt").read_text()
        assert "shard 1/3" in shard_report
        merged_report = (stores["merged"] / "report.txt").read_text()
        assert "shard" not in merged_report

    def test_merge_order_is_irrelevant(self, stores, tmp_path):
        out = tmp_path / "reordered"
        merge_shards(
            [stores["shards"][2], stores["shards"][0], stores["shards"][1]],
            out_dir=out,
        )
        assert (out / "results.jsonl").read_bytes() == (
            stores["ref"] / "results.jsonl"
        ).read_bytes()

    def test_synthesis_grid_shards_and_merges_identically(self, tmp_path):
        grid = CampaignGrid(
            resolutions=(10, 11), modes=("analytic", "synthesis")
        )
        ref = tmp_path / "ref"
        run_campaign(grid, config=_config(), store_dir=ref)
        shard_dirs = []
        for k in (1, 2):
            directory = tmp_path / f"s{k}"
            run_campaign(grid, config=_config(), store_dir=directory, shard=(k, 2))
            shard_dirs.append(directory)
        merged = tmp_path / "merged"
        merge_shards(shard_dirs, out_dir=merged)
        assert (merged / "results.jsonl").read_bytes() == (
            ref / "results.jsonl"
        ).read_bytes()
        assert (merged / "report.txt").read_bytes() == (
            ref / "report.txt"
        ).read_bytes()


class TestMergeValidation:
    def test_merge_refuses_different_grids(self, tmp_path):
        a = tmp_path / "a"
        b = tmp_path / "b"
        run_campaign(ANALYTIC_GRID, store_dir=a, shard=(1, 2))
        other = CampaignGrid(resolutions=(10, 13), sample_rates_hz=(20e6, 40e6))
        run_campaign(other, store_dir=b, shard=(2, 2))
        with pytest.raises(SpecificationError, match="grid digest"):
            merge_shards([a, b])

    def test_merge_refuses_different_configs(self, tmp_path):
        grid = CampaignGrid(resolutions=(10,), modes=("synthesis",))
        a = tmp_path / "a"
        b = tmp_path / "b"
        run_campaign(grid, config=_config(), store_dir=a, shard=(1, 2))
        run_campaign(grid, config=_config(seed=5), store_dir=b, shard=(2, 2))
        with pytest.raises(SpecificationError, match="config digest"):
            merge_shards([a, b])

    def test_merge_refuses_missing_shards(self, tmp_path):
        a = tmp_path / "a"
        run_campaign(ANALYTIC_GRID, store_dir=a, shard=(1, 3))
        with pytest.raises(SpecificationError, match="missing shard"):
            merge_shards([a])

    def test_merge_refuses_duplicate_shards(self, tmp_path):
        a = tmp_path / "a"
        b = tmp_path / "b"
        run_campaign(ANALYTIC_GRID, store_dir=a, shard=(1, 2))
        run_campaign(ANALYTIC_GRID, store_dir=b, shard=(1, 2))
        with pytest.raises(SpecificationError, match="duplicate shard"):
            merge_shards([a, b])

    def test_merge_refuses_an_unfinished_shard(self, tmp_path):
        a = tmp_path / "a"
        run_campaign(ANALYTIC_GRID, store_dir=a, shard=(1, 2))
        b = tmp_path / "b"
        b.mkdir()
        from repro.campaign import build_manifest, write_manifest
        from repro.campaign.grid import shard_scenarios as shard_fn

        labels = tuple(
            s.label for s in shard_fn(ANALYTIC_GRID.expand(), 2, 2)
        )
        write_manifest(
            build_manifest(ANALYTIC_GRID, FlowConfig(), (2, 2), labels), b
        )
        with pytest.raises(SpecificationError, match="incomplete"):
            merge_shards([a, b])

    def test_merge_refuses_a_non_store(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(SpecificationError, match="manifest"):
            merge_shards([empty])
