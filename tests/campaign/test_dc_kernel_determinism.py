"""`dc_kernel=batched` passes the campaign determinism matrix.

The batched DC kernel changes Newton trajectories (cold-start lockstep vs
the chained warm walk), so unlike ``eval_kernel`` it is *result identity*:
it enters the manifest config digest, block fingerprints and queue-ack
payloads.  What must still hold is the PR 4/6 determinism matrix — under
the batched kernel, campaigns stay byte-identical across all four
backends, across shard+merge, and across SIGTERM/resume.
"""

import pytest

from repro.campaign import CampaignGrid, merge_shards, run_campaign
from repro.campaign.manifest import (
    build_manifest,
    config_digest,
    require_matching_manifest,
)
from repro.engine.config import FlowConfig
from repro.engine.persist import block_fingerprint
from repro.engine.scheduler import SynthesisJob
from repro.errors import SpecificationError
from repro.service.jobs import CONFIG_FIELDS, build_config
from repro.tech import CMOS025
from repro.tech.process import CMOS025_SLOW

BACKENDS = ("serial", "thread", "process", "queue")

GRID = CampaignGrid(
    resolutions=(10,),
    modes=("synthesis",),
    corners=(("nom", CMOS025), ("slow", CMOS025_SLOW)),
)


def _config(backend="serial", **overrides):
    base = dict(
        backend=backend,
        max_workers=2,
        budget=60,
        retarget_budget=30,
        verify_transient=False,
        dc_kernel="batched",
    )
    base.update(overrides)
    return FlowConfig(**base)


class _Interrupt(Exception):
    """Stands in for SIGTERM: raised from the progress hook mid-campaign."""


def _interrupt_after(n: int):
    seen = []

    def hook(scenario_result):
        seen.append(scenario_result)
        if len(seen) >= n:
            raise _Interrupt

    return hook


class TestDcKernelIdentity:
    def test_dc_kernel_changes_the_config_digest(self):
        chained = config_digest(FlowConfig())
        batched = config_digest(FlowConfig(dc_kernel="batched"))
        assert chained != batched
        # Execution knobs still don't enter it.
        assert config_digest(FlowConfig(backend="process")) == chained

    def test_stores_refuse_to_mix_kernels(self, tmp_path):
        chained = build_manifest(GRID, FlowConfig())
        batched = build_manifest(GRID, FlowConfig(dc_kernel="batched"))
        with pytest.raises(SpecificationError, match="DC kernel"):
            require_matching_manifest(chained, batched, tmp_path)

    def test_fingerprint_changes_only_for_batched(self):
        base = dict(budget=60, seed=1, verify_transient=False)
        spec = GRID.expand()[0].spec
        default = block_fingerprint(spec, CMOS025, **base)
        explicit = block_fingerprint(spec, CMOS025, dc_kernel="chained", **base)
        batched = block_fingerprint(spec, CMOS025, dc_kernel="batched", **base)
        # Pre-knob cache entries keep serving default runs...
        assert default == explicit
        # ...while batched runs key separately.
        assert batched != default

    def test_queue_payload_carries_batched_only(self):
        spec = GRID.expand()[0].spec
        job = dict(spec=spec, tech=CMOS025, budget=60, seed=1, verify_transient=False)
        assert "dc_kernel" not in SynthesisJob(**job).queue_payload()
        payload = SynthesisJob(dc_kernel="batched", **job).queue_payload()
        assert payload["dc_kernel"] == "batched"

    def test_service_config_accepts_and_validates_dc_kernel(self):
        assert "dc_kernel" in CONFIG_FIELDS
        assert build_config({"dc_kernel": "batched"}).dc_kernel == "batched"
        with pytest.raises(SpecificationError, match="DC kernel"):
            build_config({"dc_kernel": "turbo"})


class TestBatchedKernelByteIdentity:
    @pytest.fixture(scope="class")
    def reference(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("dcbatch-ref") / "store"
        run_campaign(GRID, config=_config(), store_dir=out)
        return out

    @pytest.mark.parametrize("backend", BACKENDS[1:])
    def test_backends_match_serial(self, reference, backend, tmp_path):
        out = tmp_path / backend
        run_campaign(GRID, config=_config(backend), store_dir=out)
        for name in ("results.jsonl", "report.txt"):
            assert (out / name).read_bytes() == (reference / name).read_bytes(), name

    @pytest.mark.parametrize("backend", ("serial", "queue"))
    def test_sharded_merge_matches_unsharded(self, reference, backend, tmp_path):
        shard_dirs = []
        for k in (1, 2):
            directory = tmp_path / f"{backend}-shard{k}"
            run_campaign(
                GRID, config=_config(backend), store_dir=directory, shard=(k, 2)
            )
            shard_dirs.append(directory)
        merged = tmp_path / f"{backend}-merged"
        merge_shards(shard_dirs, out_dir=merged)
        for name in ("results.jsonl", "report.txt", "manifest.json"):
            assert (merged / name).read_bytes() == (reference / name).read_bytes(), name

    def test_interrupt_and_resume_matches_uninterrupted(self, reference, tmp_path):
        store = tmp_path / "interrupted"
        with pytest.raises(_Interrupt):
            run_campaign(
                GRID, config=_config(), store_dir=store, progress=_interrupt_after(1)
            )
        resumed = run_campaign(GRID, config=_config(), store_dir=store, resume=True)
        assert resumed.replayed_scenarios == 1
        for name in ("results.jsonl", "report.txt"):
            assert (store / name).read_bytes() == (reference / name).read_bytes(), name
