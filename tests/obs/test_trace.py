"""Unit tests for trace spans: nesting, propagation, export, rendering."""

import json

from repro.obs.report import read_spans, render_trace
from repro.obs.trace import (
    TRACE_ENV,
    TRACER,
    configure_tracing,
    current_context,
    span,
    trace_enabled,
)


def _spans(trace_dir):
    records = []
    for path in sorted(trace_dir.glob("*.jsonl")):
        for line in path.read_text().splitlines():
            records.append(json.loads(line))
    return records


class TestSpanExport:
    def test_disabled_tracer_emits_nothing(self, tmp_path):
        assert not trace_enabled()
        with span("quiet"):
            assert current_context() is None
        assert not list(tmp_path.glob("*.jsonl"))

    def test_nested_spans_share_trace_and_link_parents(self, tmp_path):
        configure_tracing(tmp_path)
        with span("outer", wave=1):
            with span("inner"):
                pass
        records = {r["name"]: r for r in _spans(tmp_path)}
        assert set(records) == {"outer", "inner"}
        outer, inner = records["outer"], records["inner"]
        assert inner["trace"] == outer["trace"]
        assert inner["parent"] == outer["span"]
        assert outer["parent"] is None
        assert outer["attrs"] == {"wave": 1}
        assert outer["duration_s"] >= inner["duration_s"] >= 0.0

    def test_sibling_spans_get_distinct_ids(self, tmp_path):
        configure_tracing(tmp_path)
        with span("root"):
            with span("a"):
                pass
            with span("b"):
                pass
        records = _spans(tmp_path)
        assert len({r["span"] for r in records}) == 3
        assert len({r["trace"] for r in records}) == 1

    def test_decorator_form(self, tmp_path):
        configure_tracing(tmp_path)

        @span("worker.fn", kind="test")
        def work(x):
            return x + 1

        assert work(1) == 2
        assert work(2) == 3
        records = [r for r in _spans(tmp_path) if r["name"] == "worker.fn"]
        assert len(records) == 2
        assert records[0]["span"] != records[1]["span"]

    def test_exception_recorded_and_stack_unwound(self, tmp_path):
        configure_tracing(tmp_path)
        try:
            with span("boom"):
                raise ValueError("x")
        except ValueError:
            pass
        (record,) = _spans(tmp_path)
        assert record["error"] == "ValueError"
        assert current_context() is None

    def test_explicit_parent_stitches_cross_process_context(self, tmp_path):
        configure_tracing(tmp_path)
        ctx = {"trace": "t" * 16, "span": "p" * 16}
        with span("worker.task", parent=ctx):
            pass
        (record,) = _spans(tmp_path)
        assert record["trace"] == ctx["trace"]
        assert record["parent"] == ctx["span"]

    def test_worker_identity_stamped(self, tmp_path):
        configure_tracing(tmp_path)
        TRACER.worker = "w-7"
        try:
            with span("worker.task"):
                pass
        finally:
            TRACER.worker = None
        (record,) = _spans(tmp_path)
        assert record["worker"] == "w-7"

    def test_env_var_enables_sink(self, tmp_path, monkeypatch):
        monkeypatch.setenv(TRACE_ENV, str(tmp_path))
        assert trace_enabled()
        with span("via-env"):
            pass
        assert _spans(tmp_path)[0]["name"] == "via-env"


class TestCurrentContext:
    def test_reflects_innermost_open_span(self, tmp_path):
        configure_tracing(tmp_path)
        assert current_context() is None
        with span("outer"):
            outer_ctx = current_context()
            with span("inner"):
                inner_ctx = current_context()
                assert inner_ctx["trace"] == outer_ctx["trace"]
                assert inner_ctx["span"] != outer_ctx["span"]
            assert current_context() == outer_ctx
        assert current_context() is None


class TestReport:
    def test_read_spans_accepts_store_or_trace_dir(self, tmp_path):
        store = tmp_path / "store"
        configure_tracing(store / "traces")
        with span("campaign.run"):
            pass
        assert [s["name"] for s in read_spans(store)] == ["campaign.run"]
        assert [s["name"] for s in read_spans(store / "traces")] == ["campaign.run"]

    def test_render_indents_children_and_counts_processes(self, tmp_path):
        configure_tracing(tmp_path)
        with span("campaign.run", backend="serial"):
            with span("campaign.scenario", label="k10"):
                pass
        text = render_trace(read_spans(tmp_path))
        assert "trace report: 2 span(s), 1 trace(s), 1 process(es)" in text
        lines = text.splitlines()
        run_line = next(l for l in lines if "campaign.run" in l)
        scen_line = next(l for l in lines if "campaign.scenario" in l)
        assert len(scen_line) - len(scen_line.lstrip()) > \
            len(run_line) - len(run_line.lstrip())
        assert "backend=serial" in run_line
        assert "label=k10" in scen_line

    def test_orphan_spans_render_as_roots(self, tmp_path):
        configure_tracing(tmp_path)
        with span("survivor", parent={"trace": "t" * 16, "span": "dead" * 4}):
            pass
        text = render_trace(read_spans(tmp_path))
        assert "survivor" in text

    def test_empty_report(self):
        assert "no spans recorded" in render_trace([])

    def test_torn_lines_skipped(self, tmp_path):
        (tmp_path / "x.jsonl").write_text(
            '{"name": "ok", "span": "s1", "trace": "t1"}\n{ torn\n'
        )
        assert [s["name"] for s in read_spans(tmp_path)] == ["ok"]
