"""Unit tests for the metrics registry: primitives, views, merge, spool."""

import json

import numpy as np
import pytest

from repro.errors import SpecificationError
from repro.obs import metrics
from repro.obs.metrics import CounterView, MetricsRegistry


class TestRegistryPrimitives:
    def test_counter_accumulates(self):
        r = MetricsRegistry()
        r.counter("a")
        r.counter("a", 4)
        assert r.get_counter("a") == 5
        assert r.get_counter("missing") == 0
        assert r.get_counter("missing", -1) == -1

    def test_gauge_keeps_last_value(self):
        r = MetricsRegistry()
        r.gauge("depth", 3)
        r.gauge("depth", 1)
        assert r.snapshot()["gauges"] == {"depth": 1}

    def test_histogram_summary(self):
        r = MetricsRegistry()
        for v in (2.0, 5.0, 3.0):
            r.observe("latency", v)
        h = r.snapshot()["histograms"]["latency"]
        assert h == {"count": 3, "total": 10.0, "min": 2.0, "max": 5.0}

    def test_numpy_scalars_coerce_to_json_numbers(self):
        r = MetricsRegistry()
        r.counter("n", np.int64(3))
        r.gauge("g", np.float64(1.5))
        r.observe("h", np.int32(7))
        snap = json.loads(json.dumps(r.snapshot()))  # must be JSON-safe
        assert snap["counters"]["n"] == 3
        assert snap["gauges"]["g"] == 1.5
        assert snap["histograms"]["h"]["total"] == 7

    def test_reset_drops_everything(self):
        r = MetricsRegistry()
        r.counter("a")
        r.gauge("b", 1)
        r.observe("c", 1)
        r.reset()
        assert r.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}


class TestMergeSemantics:
    def test_counters_add_gauges_max_histograms_widen(self):
        a = MetricsRegistry()
        a.counter("jobs", 2)
        a.gauge("wave", 1)
        a.observe("dt", 1.0)
        b = MetricsRegistry()
        b.counter("jobs", 3)
        b.gauge("wave", 4)
        b.observe("dt", 9.0)

        merged = metrics.aggregate_snapshots([a.snapshot(), b.snapshot()])
        assert merged["counters"]["jobs"] == 5
        assert merged["gauges"]["wave"] == 4
        assert merged["histograms"]["dt"] == {
            "count": 2, "total": 10.0, "min": 1.0, "max": 9.0,
        }

    def test_merge_is_order_independent(self):
        snaps = []
        for i in range(3):
            r = MetricsRegistry()
            r.counter("jobs", i + 1)
            r.gauge("wave", 10 - i)
            r.observe("dt", float(i))
            snaps.append(r.snapshot())
        fwd = metrics.aggregate_snapshots(snaps)
        rev = metrics.aggregate_snapshots(list(reversed(snaps)))
        assert fwd == rev

    def test_malformed_snapshots_are_tolerated(self):
        r = MetricsRegistry()
        r.merge("not a dict")
        r.merge({"counters": "nope", "gauges": None, "histograms": 3})
        r.merge({"counters": {"ok": 1, "bad": "x"}})
        r.merge({"histograms": {"h": {"count": "?"}, "good": {
            "count": 1, "total": 2.0, "min": 2.0, "max": 2.0}}})
        snap = r.snapshot()
        assert snap["counters"] == {"ok": 1}
        assert list(snap["histograms"]) == ["good"]


class TestCounterView:
    def test_dict_compatibility(self):
        r = MetricsRegistry()
        view = CounterView(r, "kernel", ("hits", "misses"))
        view["hits"] += 2
        assert dict(view) == {"hits": 2, "misses": 0}
        assert sorted(view.items()) == [("hits", 2), ("misses", 0)]
        assert len(view) == 2
        assert r.get_counter("kernel.hits") == 2

    def test_fixed_key_set(self):
        view = CounterView(MetricsRegistry(), "kernel", ("hits",))
        with pytest.raises(KeyError):
            view["other"]
        with pytest.raises(TypeError):
            del view["hits"]

    def test_writes_bypass_telemetry_gate(self):
        # Legacy kernel counters predate the knob: they record even when off.
        metrics.set_mode("off")
        view = CounterView(metrics.REGISTRY, "kernel", ("hits",))
        view["hits"] += 1
        assert view["hits"] == 1


class TestModeGate:
    def test_off_mode_silences_module_helpers(self):
        metrics.set_mode("off")
        metrics.counter("a")
        metrics.gauge("b", 1)
        metrics.observe("c", 1)
        assert metrics.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }
        assert not metrics.metrics_enabled()

    def test_metrics_mode_records(self):
        metrics.set_mode("metrics")
        metrics.counter("a")
        assert metrics.snapshot()["counters"] == {"a": 1}

    def test_unknown_mode_rejected(self):
        with pytest.raises(SpecificationError):
            metrics.set_mode("loud")

    def test_reset_all_restores_default_mode(self):
        metrics.set_mode("off")
        metrics.reset_all()
        assert metrics.telemetry_mode() == "metrics"


class TestVerboseLines:
    def test_sorted_name_value_pairs(self):
        r = MetricsRegistry()
        r.counter("z.count", 2)
        r.gauge("a.depth", 1.25)
        r.observe("m.dt", 3.0)
        lines = r.lines()
        assert lines == sorted(lines)
        assert "a.depth 1.25" in lines
        assert "z.count 2" in lines
        assert "m.dt.count 1" in lines
        assert "m.dt.total 3" in lines


class TestSpool:
    def test_write_then_read_roundtrip(self, tmp_path):
        metrics.counter("jobs", 2)
        path = metrics.write_spool_snapshot(tmp_path)
        assert path is not None and path.exists()
        snaps = metrics.read_spool_snapshots(tmp_path)
        assert len(snaps) == 1
        assert snaps[0]["counters"]["jobs"] == 2

    def test_write_defaults_to_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(metrics.SPOOL_ENV, str(tmp_path))
        metrics.counter("jobs")
        assert metrics.write_spool_snapshot() is not None
        assert list(tmp_path.glob("metrics-*.json"))

    def test_write_is_noop_without_spool_or_when_off(self, tmp_path, monkeypatch):
        monkeypatch.delenv(metrics.SPOOL_ENV, raising=False)
        assert metrics.write_spool_snapshot() is None
        metrics.set_mode("off")
        assert metrics.write_spool_snapshot(tmp_path) is None
        assert not list(tmp_path.glob("metrics-*.json"))

    def test_exclude_self_drops_own_file(self, tmp_path):
        metrics.counter("jobs")
        own = metrics.write_spool_snapshot(tmp_path)
        other = tmp_path / "metrics-otherhost-42.json"
        other.write_text(json.dumps({"counters": {"jobs": 5}}))
        assert len(metrics.read_spool_snapshots(tmp_path)) == 2
        kept = metrics.read_spool_snapshots(tmp_path, exclude_self=True)
        assert len(kept) == 1
        assert kept[0]["counters"]["jobs"] == 5
        assert own != other

    def test_torn_files_are_skipped(self, tmp_path):
        (tmp_path / "metrics-h-1.json").write_text("{ torn")
        (tmp_path / "metrics-h-2.json").write_text(json.dumps({"counters": {}}))
        assert len(metrics.read_spool_snapshots(tmp_path)) == 1
