"""Tests for physical constants and unit helpers."""

import math

import pytest

from repro import constants


class TestConstants:
    def test_thermal_voltage_room_temperature(self):
        assert constants.THERMAL_VOLTAGE == pytest.approx(25.9e-3, rel=0.01)

    def test_kt_room(self):
        assert constants.KT_ROOM == pytest.approx(4.14e-21, rel=0.01)


class TestHelpers:
    def test_db_roundtrip(self):
        assert constants.from_db(constants.db(42.0)) == pytest.approx(42.0)

    def test_db_of_unity_is_zero(self):
        assert constants.db(1.0) == 0.0

    def test_db_power_half(self):
        assert constants.db_power(0.5) == pytest.approx(-3.0103, abs=1e-3)

    def test_db_rejects_non_positive(self):
        with pytest.raises(ValueError):
            constants.db(0.0)
        with pytest.raises(ValueError):
            constants.db_power(-1.0)

    def test_parallel_two_equal(self):
        assert constants.parallel(2e3, 2e3) == pytest.approx(1e3)

    def test_parallel_with_short(self):
        assert constants.parallel(1e3, 0.0) == 0.0

    def test_parallel_validation(self):
        with pytest.raises(ValueError):
            constants.parallel()
        with pytest.raises(ValueError):
            constants.parallel(-1.0)

    def test_settling_time_constants(self):
        assert constants.settling_time_constants(math.exp(-7)) == pytest.approx(7.0)
        with pytest.raises(ValueError):
            constants.settling_time_constants(1.5)

    def test_lsb(self):
        assert constants.lsb(2.0, 13) == pytest.approx(2.0 / 8192)
        with pytest.raises(ValueError):
            constants.lsb(2.0, 0)
        with pytest.raises(ValueError):
            constants.lsb(-2.0, 8)
