"""HTTP server + client: end-to-end jobs, streaming, byte-identity, restart."""

import json
import threading

import pytest

from repro.campaign import CampaignGrid, run_campaign
from repro.errors import ServiceError
from repro.flow.topology import optimize_topology
from repro.service import BackgroundServer, ServiceClient, topology_payload
from repro.specs.adc import AdcSpec


CAMPAIGN = {"kind": "campaign", "grid": {"resolutions": [10, 11, 12]}}


@pytest.fixture
def server(tmp_path):
    with BackgroundServer(store_dir=tmp_path / "svc") as background:
        yield background


@pytest.fixture
def client(server):
    return ServiceClient(server.base_url)


class TestJobLifecycle:
    def test_campaign_job_completes_and_streams_scenarios(self, client):
        # Park a slow job on the single worker first so the campaign is
        # still queued when the watch stream opens — otherwise a fast
        # analytic campaign can finish before the subscription lands and
        # the scenario events would legitimately never be seen.
        blocker = {
            "kind": "optimize",
            "spec": {"resolution_bits": 10},
            "mode": "synthesis",
            "config": {"budget": 150, "verify_transient": False},
        }
        client.submit(blocker)
        response = client.submit(CAMPAIGN)
        assert response["coalesced"] is False
        job_id = response["job"]["id"]
        labels = []
        for event in client.watch(job_id):
            if event["event"] == "scenario":
                labels.append(event["label"])
            if event.get("state") in ("done", "failed"):
                break
        final = client.job(job_id)
        assert final["state"] == "done"
        assert final["completed_scenarios"] == final["total_scenarios"] == 3
        # Scenario events arrive in expansion order.
        assert labels == [
            "k10_40M_analytic",
            "k11_40M_analytic",
            "k12_40M_analytic",
        ]

    def test_campaign_artifacts_byte_identical_to_direct_run(
        self, client, tmp_path
    ):
        job_id = client.submit(CAMPAIGN)["job"]["id"]
        client.wait(job_id, timeout=120)
        direct = tmp_path / "direct"
        run_campaign(CampaignGrid(resolutions=(10, 11, 12)), store_dir=direct)
        for name in ("results.jsonl", "report.txt", "manifest.json"):
            assert client.artifact(job_id, name) == (
                direct / name
            ).read_bytes(), name

    def test_optimize_job_matches_direct_payload(self, client):
        body = {"kind": "optimize", "spec": {"resolution_bits": 11}}
        job_id = client.submit(body)["job"]["id"]
        client.wait(job_id, timeout=120)
        direct = topology_payload(optimize_topology(AdcSpec(resolution_bits=11)))
        assert client.artifact(job_id, "result.json") == direct
        assert client.result(job_id)["winner"] == json.loads(direct)["winner"]

    def test_download_fetches_every_artifact(self, client, tmp_path):
        job_id = client.submit(CAMPAIGN)["job"]["id"]
        client.wait(job_id, timeout=120)
        paths = client.download(job_id, tmp_path / "fetched")
        assert {"results.jsonl", "report.txt", "manifest.json"} <= set(paths)
        for path in paths.values():
            assert path.is_file() and path.stat().st_size > 0

    def test_jobs_listing_and_health(self, client):
        job_id = client.submit(CAMPAIGN)["job"]["id"]
        client.wait(job_id, timeout=120)
        listed = client.jobs()
        assert [job["id"] for job in listed] == [job_id]
        health = client.health()
        assert health["status"] == "ok" and health["jobs"] == 1


class TestCoalescing:
    def test_concurrent_identical_submissions_share_one_execution(self, client):
        responses = []

        def submit():
            response = client.submit({**CAMPAIGN, "client": "racer"})
            client.wait(response["job"]["id"], timeout=120)
            responses.append(response)

        threads = [threading.Thread(target=submit) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        ids = {response["job"]["id"] for response in responses}
        assert len(ids) == 1  # one job, four satisfied clients
        stats = client.stats()
        assert stats["submissions"] == 4
        assert stats["executions"] == 1
        assert stats["coalesced"] == 3
        # Every client reads the same bytes.
        (job_id,) = ids
        payloads = {client.artifact(job_id, "results.jsonl") for _ in range(4)}
        assert len(payloads) == 1

    def test_resubmitting_a_done_job_serves_the_store(self, client):
        first = client.submit(CAMPAIGN)
        client.wait(first["job"]["id"], timeout=120)
        again = client.submit(CAMPAIGN)
        assert again["coalesced"] is True
        assert again["job"]["state"] == "done"
        assert client.stats()["executions"] == 1


class TestRestart:
    def test_restart_resumes_queue_without_recomputing_done_jobs(self, tmp_path):
        store = tmp_path / "svc"
        with BackgroundServer(store_dir=store) as first:
            client = ServiceClient(first.base_url)
            job_id = client.submit(CAMPAIGN)["job"]["id"]
            client.wait(job_id, timeout=120)
            served = client.artifact(job_id, "results.jsonl")

        with BackgroundServer(store_dir=store) as second:
            client = ServiceClient(second.base_url)
            (job,) = client.jobs()
            assert job["id"] == job_id and job["state"] == "done"
            # Identical resubmission coalesces onto the stored result: no
            # execution in the new server's lifetime.
            response = client.submit(CAMPAIGN)
            assert response["coalesced"] is True
            assert response["job"]["state"] == "done"
            assert client.stats()["executions"] == 0
            assert client.artifact(job_id, "results.jsonl") == served


class TestErrors:
    def test_malformed_json_is_a_single_line_error(self, server):
        import http.client

        connection = http.client.HTTPConnection(
            server.service.host, server.service.port, timeout=30
        )
        try:
            connection.request(
                "POST",
                "/jobs",
                body=b"{nope",
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            assert response.status == 400
            assert "not valid JSON" in json.loads(response.read())["error"]
        finally:
            connection.close()

    def test_bad_request_fields_surface_as_service_errors(self, client):
        with pytest.raises(ServiceError, match="process, queue, serial"):
            client.submit({**CAMPAIGN, "config": {"backend": "gpu"}})
        with pytest.raises(ServiceError, match="resolutions"):
            client.submit({"kind": "campaign", "grid": {}})

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServiceError, match="unknown job"):
            client.job("feedc0ffee00")
        with pytest.raises(ServiceError, match="unknown job"):
            list(client.watch("feedc0ffee00"))

    def test_result_of_unfinished_job_conflicts(self, client):
        # A queued job has no result yet: hold the single worker busy with
        # a synthesis job, then ask for the queued job's result.
        slow = {
            "kind": "optimize",
            "spec": {"resolution_bits": 12},
            "mode": "synthesis",
            "config": {"budget": 300, "verify_transient": False},
        }
        client.submit(slow)
        queued = client.submit(CAMPAIGN)["job"]
        try:
            with pytest.raises(ServiceError, match="not done"):
                client.result(queued["id"])
        finally:
            client.wait(queued["id"], timeout=300)

    def test_unknown_artifact_names_available_ones(self, client):
        job_id = client.submit(CAMPAIGN)["job"]["id"]
        client.wait(job_id, timeout=120)
        with pytest.raises(ServiceError, match="available"):
            client.artifact(job_id, "secrets.txt")
        # Traversal-shaped names fall off the route table entirely.
        with pytest.raises(ServiceError, match="no route"):
            client.artifact(job_id, "../../etc/passwd")

    def test_unknown_route_is_404(self, client):
        with pytest.raises(ServiceError, match="no route"):
            client._request("GET", "/nonsense")

    def test_negative_content_length_is_400(self, server):
        import socket

        with socket.create_connection(
            (server.service.host, server.service.port), timeout=30
        ) as sock:
            sock.sendall(
                b"POST /jobs HTTP/1.1\r\n"
                b"Host: x\r\n"
                b"Content-Length: -1\r\n"
                b"\r\n"
            )
            response = sock.recv(65536).decode("latin-1")
        assert "400" in response.split("\r\n", 1)[0]
        assert "Content-Length" in response

    def test_wait_timeout_does_not_overshoot_on_a_quiet_stream(self, client):
        import time as _time

        # Park the worker on a slow synthesis job; the queued campaign's
        # event stream then stays quiet, and wait() must still honour its
        # deadline instead of blocking until the next event.
        slow = {
            "kind": "optimize",
            "spec": {"resolution_bits": 12},
            "mode": "synthesis",
            "config": {"budget": 300, "verify_transient": False},
        }
        client.submit(slow)
        queued = client.submit(CAMPAIGN)["job"]
        start = _time.monotonic()
        with pytest.raises(ServiceError, match="timed out|cannot reach"):
            client.wait(queued["id"], timeout=0.5)
        assert _time.monotonic() - start < 10.0
        client.wait(queued["id"], timeout=300)  # let the fixture drain fast

    def test_unreachable_service_is_a_service_error(self):
        dead = ServiceClient("http://127.0.0.1:1", timeout=2)
        with pytest.raises(ServiceError, match="cannot reach"):
            dead.health()


class TestCancel:
    def test_cancel_dequeues_a_queued_job(self, client):
        slow = {
            "kind": "optimize",
            "spec": {"resolution_bits": 12},
            "mode": "synthesis",
            "config": {"budget": 300, "verify_transient": False},
        }
        running = client.submit(slow)["job"]
        queued = client.submit(CAMPAIGN)["job"]
        response = client.cancel(queued["id"])
        assert response["cancelled"] is True
        assert client.job(queued["id"])["state"] == "cancelled"
        final = client.wait(running["id"], timeout=300)
        assert final["state"] == "done"
