"""Job requests: content keys, validation, records and the job store."""

import json

import pytest

from repro.engine.config import FlowConfig
from repro.errors import SpecificationError
from repro.flow.topology import optimize_topology
from repro.service.jobs import (
    JobRecord,
    JobStore,
    RESULT_FILENAME,
    build_config,
    parse_request,
    topology_payload,
)
from repro.specs.adc import AdcSpec


CAMPAIGN = {"kind": "campaign", "grid": {"resolutions": [10, 11]}}


class TestContentKeys:
    def test_identical_requests_share_a_key(self):
        assert parse_request(CAMPAIGN).key == parse_request(dict(CAMPAIGN)).key

    def test_key_survives_json_formatting_differences(self):
        # Ints vs floats and implicit vs explicit defaults must not split
        # the key — coalescing works on content, not on raw bytes.
        explicit = {
            "kind": "campaign",
            "grid": {
                "resolutions": [10.0, 11.0],
                "sample_rates_hz": [40e6],
                "modes": ["analytic"],
                "corners": ["nom"],
                "full_scale": 2,
            },
        }
        assert parse_request(explicit).key == parse_request(CAMPAIGN).key

    def test_execution_knobs_do_not_split_the_key(self):
        # Results are byte-identical across backend/worker/kernel choices
        # (the repo-wide guarantee), so those knobs must coalesce.
        tweaked = {
            **CAMPAIGN,
            "config": {
                "backend": "thread",
                "max_workers": 4,
                "eval_kernel": "legacy",
                "eval_speculation": 8,
            },
        }
        assert parse_request(tweaked).key == parse_request(CAMPAIGN).key

    def test_result_relevant_config_splits_the_key(self):
        for config in ({"budget": 99}, {"seed": 3}, {"verify_transient": False}):
            other = {**CAMPAIGN, "config": config}
            assert parse_request(other).key != parse_request(CAMPAIGN).key

    def test_different_grids_split_the_key(self):
        other = {"kind": "campaign", "grid": {"resolutions": [10, 12]}}
        assert parse_request(other).key != parse_request(CAMPAIGN).key

    def test_kinds_split_the_key(self):
        optimize = {"kind": "optimize", "spec": {"resolution_bits": 10}}
        assert parse_request(optimize).key != parse_request(CAMPAIGN).key

    def test_priority_and_client_do_not_split_the_key(self):
        tagged = {**CAMPAIGN, "priority": 5, "client": "alice"}
        assert parse_request(tagged).key == parse_request(CAMPAIGN).key


class TestValidation:
    def test_non_object_body_rejected(self):
        with pytest.raises(SpecificationError, match="JSON object"):
            parse_request([1, 2])

    def test_unknown_kind_names_valid_choices(self):
        with pytest.raises(SpecificationError, match="campaign, optimize"):
            parse_request({"kind": "simulate"})

    def test_unknown_backend_names_valid_choices(self):
        with pytest.raises(SpecificationError, match="process, queue, serial"):
            parse_request({**CAMPAIGN, "config": {"backend": "gpu"}})

    def test_unknown_config_field_names_valid_fields(self):
        with pytest.raises(SpecificationError, match="valid: backend"):
            parse_request({**CAMPAIGN, "config": {"cache_dir": "/tmp/x"}})

    def test_unknown_corner_names_registered_tags(self):
        body = {"kind": "campaign", "grid": {"resolutions": [10], "corners": ["ff"]}}
        with pytest.raises(SpecificationError, match="nom, slow"):
            parse_request(body)

    def test_missing_resolutions_rejected(self):
        with pytest.raises(SpecificationError, match="resolutions"):
            parse_request({"kind": "campaign", "grid": {}})

    def test_unknown_grid_field_rejected(self):
        body = {"kind": "campaign", "grid": {"resolutions": [10], "shards": 2}}
        with pytest.raises(SpecificationError, match="unknown grid field"):
            parse_request(body)

    def test_optimize_needs_resolution(self):
        with pytest.raises(SpecificationError, match="resolution_bits"):
            parse_request({"kind": "optimize", "spec": {}})

    def test_optimize_unknown_mode_rejected(self):
        body = {"kind": "optimize", "spec": {"resolution_bits": 10}, "mode": "spice"}
        with pytest.raises(SpecificationError, match="analytic, synthesis"):
            parse_request(body)

    def test_non_integer_priority_rejected(self):
        with pytest.raises(SpecificationError, match="priority"):
            parse_request({**CAMPAIGN, "priority": "high"})

    def test_build_config_applies_server_cache_dir(self):
        config = build_config({"budget": 123}, cache_dir="/tmp/cache")
        assert config == FlowConfig(budget=123, cache_dir="/tmp/cache")


class TestRecordsAndStore:
    def test_record_roundtrip(self):
        request = parse_request(CAMPAIGN)
        record = JobRecord(
            key=request.key,
            kind=request.kind,
            request=request.body,
            seq=3,
            priority=1,
            client="alice",
        )
        twin = JobRecord.from_json(record.to_json().decode("utf-8"))
        assert twin == record
        assert twin.job_id == request.key[:12]

    def test_store_persists_and_orders_by_seq(self, tmp_path):
        store = JobStore(tmp_path)
        for seq, bits in ((2, [10]), (1, [11])):
            request = parse_request(
                {"kind": "campaign", "grid": {"resolutions": bits}}
            )
            store.save(
                JobRecord(
                    key=request.key,
                    kind=request.kind,
                    request=request.body,
                    seq=seq,
                )
            )
        loaded = store.load_all()
        assert [r.seq for r in loaded] == [1, 2]

    def test_corrupt_record_is_skipped(self, tmp_path):
        store = JobStore(tmp_path)
        request = parse_request(CAMPAIGN)
        store.save(
            JobRecord(key=request.key, kind="campaign", request=request.body)
        )
        (store.jobs_dir / "zzzz.json").write_text("{broken", encoding="utf-8")
        assert [r.key for r in store.load_all()] == [request.key]

    def test_result_marker_and_artifacts(self, tmp_path):
        store = JobStore(tmp_path)
        key = "k" * 64
        assert not store.result_ready(key)
        assert store.read_result(key) is None
        store.write_result(key, b'{"ok":true}\n')
        assert store.result_ready(key)
        assert store.read_result(key) == b'{"ok":true}\n'
        assert list(store.artifacts(key)) == [RESULT_FILENAME]
        # Campaign store artifacts appear once the files exist.
        store_dir = store.campaign_store_dir(key)
        store_dir.mkdir(parents=True)
        (store_dir / "results.jsonl").write_text("{}\n", encoding="utf-8")
        assert set(store.artifacts(key)) == {RESULT_FILENAME, "results.jsonl"}


class TestPayloads:
    def test_topology_payload_is_canonical_and_deterministic(self):
        result = optimize_topology(AdcSpec(resolution_bits=10))
        twin = optimize_topology(AdcSpec(resolution_bits=10))
        assert topology_payload(result) == topology_payload(twin)
        payload = json.loads(topology_payload(result))
        assert payload["winner"] == result.best.label
        assert payload["spec"]["resolution_bits"] == 10
        assert payload["rankings"][0][0] == result.best.label
