"""The distributed fabric end-to-end: HTTP broker, worker fleet, byte-identity."""

import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.campaign import CampaignGrid, run_campaign
from repro.engine.broker import BrokerBackend, DirectoryBroker, HttpBroker
from repro.engine.config import FlowConfig
from repro.engine.persist import digest
from repro.engine.worker import WorkerLoop
from repro.engine.workqueue import task_key
from repro.errors import ServiceError
from repro.service import BackgroundServer, ServiceClient, wire

GRID = CampaignGrid(resolutions=(10, 11))

_REPO_SRC = str(Path(repro.__file__).resolve().parents[1])


def _spawn_worker(base_url: str, *extra: str) -> subprocess.Popen:
    """One `repro-adc worker` subprocess attached to `base_url`."""
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "worker",
            "--broker",
            base_url,
            "--poll",
            "0.02",
            *extra,
        ],
        env={**os.environ, "PYTHONPATH": _REPO_SRC},
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _stop_worker(proc: subprocess.Popen) -> None:
    if proc.poll() is None:
        proc.terminate()
        try:
            proc.wait(timeout=20)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()


@pytest.fixture
def server(tmp_path):
    with BackgroundServer(store_dir=tmp_path / "svc", lease_ttl=2.0) as background:
        yield background


@pytest.fixture
def broker(server):
    return HttpBroker(server.base_url)


class TestHttpBrokerProtocol:
    def test_full_task_lifecycle_over_http(self, broker):
        key = task_key(digest, {"n": 1})
        assert broker.submit(key, wire.encode_task(digest, {"n": 1})) is True
        assert broker.submit(key, wire.encode_task(digest, {"n": 1})) is False
        leased = broker.lease("w1")
        assert leased is not None
        got_key, envelope = leased
        assert got_key == key
        assert broker.lease("w2") is None  # exclusive
        assert broker.heartbeat(key, "w1") is True
        fn_name, task = wire.decode_task(envelope)
        assert fn_name == "repro.engine.persist.digest"
        broker.ack(key, wire.encode_result(digest(task)), "w1")
        assert wire.decode_result(broker.result(key)) == digest({"n": 1})
        stats = broker.stats()
        assert stats["acks"] == 1 and stats["pending"] == 0

    def test_nack_failure_and_discard_over_http(self, broker):
        key = task_key(digest, {"n": 2})
        broker.submit(key, wire.encode_task(digest, {"n": 2}))
        broker.lease("w1")
        assert broker.nack(key, "w1", "boom") == 1
        assert broker.failure(key) == {"retries": 1, "error": "boom"}
        assert broker.result(key) is None
        broker.lease("w1")
        broker.ack(key, b"payload", "w1")
        broker.discard(key)
        assert broker.result(key) is None

    def test_statuses_batch_over_http(self, broker):
        keys = [task_key(digest, {"n": n}) for n in (20, 21, 22)]
        for key, n in zip(keys, (20, 21, 22)):
            broker.submit(key, wire.encode_task(digest, {"n": n}))
        acked_key = broker.lease("w1")[0]  # first two in lease order
        running_key = broker.lease("w1")[0]
        idle_key = next(k for k in keys if k not in (acked_key, running_key))
        broker.ack(acked_key, wire.encode_result(0), "w1")
        statuses = broker.statuses(keys)
        assert statuses[acked_key]["acked"] is True
        assert statuses[running_key]["leased"] is True
        assert statuses[running_key]["acked"] is False
        assert statuses[idle_key] == {
            "acked": False,
            "leased": False,
            "failure": None,
        }

    def test_heartbeat_extends_a_lease_past_its_ttl(self, broker):
        # Server TTL is 2s: beat for 3s, the lease must survive; stop, and
        # one TTL later the reclaim sweep breaks it.
        key = task_key(digest, {"n": 3})
        broker.submit(key, wire.encode_task(digest, {"n": 3}))
        assert broker.lease("w1") is not None
        deadline = time.monotonic() + 3.0
        while time.monotonic() < deadline:
            assert broker.heartbeat(key, "w1") is True
            assert broker.reclaim() == 0
            time.sleep(0.2)
        time.sleep(2.5)
        assert broker.reclaim() == 1
        leased = broker.lease("w2")
        assert leased is not None and leased[0] == key

    def test_sigkilled_worker_lease_is_reclaimed_by_ttl(self, broker, server):
        # Over HTTP the lease records the *server's* pid (alive), so a
        # SIGKILLed remote worker is reclaimed purely by TTL expiry.
        key = task_key(digest, {"n": 4})
        broker.submit(key, wire.encode_task(digest, {"n": 4}))
        victim = subprocess.Popen(
            [
                sys.executable,
                "-c",
                "import time\n"
                "from repro.engine.broker import HttpBroker\n"
                f"b = HttpBroker({server.base_url!r})\n"
                "assert b.lease('victim') is not None\n"
                "print('leased', flush=True)\n"
                "time.sleep(600)\n",
            ],
            stdout=subprocess.PIPE,
            env={**os.environ, "PYTHONPATH": _REPO_SRC},
        )
        try:
            assert victim.stdout.readline().strip() == b"leased"
            assert broker.lease("survivor") is None
            victim.kill()
            victim.wait()
            # No heartbeats arrive anymore: after the 2s TTL the task is
            # re-leasable by a survivor.
            deadline = time.monotonic() + 10.0
            leased = None
            while leased is None and time.monotonic() < deadline:
                leased = broker.lease("survivor")
                if leased is None:
                    time.sleep(0.2)
            assert leased is not None and leased[0] == key
            assert broker.stats()["reclaimed"] >= 1
        finally:
            victim.kill()
            victim.wait()

    def test_unreachable_broker_raises_service_error(self):
        with pytest.raises(ServiceError, match="cannot reach"):
            HttpBroker("http://127.0.0.1:1").stats()


class TestBrokerBackendOverHttp:
    def test_map_executes_on_an_http_worker_loop(self, server):
        backend = BrokerBackend(broker_url=server.base_url, poll_interval=0.02)
        worker = WorkerLoop(
            HttpBroker(server.base_url),
            worker_id="w1",
            poll_interval=0.02,
            idle_exit=3.0,
        )
        thread = threading.Thread(target=worker.run)
        thread.start()
        tasks = [{"n": i} for i in range(5)]
        try:
            results = backend.map(digest, tasks)
        finally:
            thread.join()
        assert results == [digest(t) for t in tasks]
        assert backend.dispatched == 5

    def test_server_side_broker_shares_state_with_http(self, server, tmp_path):
        # The in-server dispatch path (scheduler swapping queue_dir to the
        # service's broker directory) and the HTTP routes must see one
        # queue: publish via HTTP, observe via the directory, and back.
        http = HttpBroker(server.base_url)
        direct = DirectoryBroker(server.service.broker.root)
        key = task_key(digest, {"n": 9})
        http.submit(key, wire.encode_task(digest, {"n": 9}))
        assert direct.stats()["pending"] == 1
        leased = direct.lease("local")
        assert leased is not None
        direct.ack(key, wire.encode_result("done"), "local")
        assert wire.decode_result(http.result(key)) == "done"


class TestFleetByteIdentity:
    def test_two_workers_match_the_serial_reference(self, server, tmp_path):
        """The acceptance gate: a 2-worker fleet campaign is byte-identical
        to the serial run."""
        serial = tmp_path / "serial"
        run_campaign(GRID, config=FlowConfig(), store_dir=serial)

        fleet = tmp_path / "fleet"
        workers = [_spawn_worker(server.base_url) for _ in range(2)]
        try:
            run_campaign(
                GRID,
                config=FlowConfig(
                    backend="broker", broker_url=server.base_url
                ),
                store_dir=fleet,
            )
        finally:
            for proc in workers:
                _stop_worker(proc)
        for name in ("results.jsonl", "report.txt"):
            assert (fleet / name).read_bytes() == (serial / name).read_bytes()
        # The fleet really did the work remotely: tasks flowed through the
        # server's broker.
        stats = HttpBroker(server.base_url).stats()
        assert stats["acked"] > 0

    def test_submitted_broker_job_matches_a_serial_job(self, server, tmp_path):
        """`repro-adc submit --backend broker` + attached workers produce
        the same artifacts as a serial-backend submission."""
        client = ServiceClient(server.base_url)
        request = {
            "kind": "campaign",
            "grid": {"resolutions": [10, 11]},
            "config": {"backend": "broker"},
        }
        workers = [_spawn_worker(server.base_url) for _ in range(2)]
        try:
            job_id = client.submit(request)["job"]["id"]
            state = client.wait(job_id, timeout=180)["state"]
        finally:
            for proc in workers:
                _stop_worker(proc)
        assert state == "done"
        serial_id = client.submit(
            {"kind": "campaign", "grid": {"resolutions": [10, 11]}}
        )["job"]["id"]
        assert client.wait(serial_id, timeout=180)["state"] == "done"
        broker_results = client.artifact(job_id, "results.jsonl")
        serial_results = client.artifact(serial_id, "results.jsonl")
        assert broker_results == serial_results

    def test_broker_job_without_a_broker_dir_is_refused(self, tmp_path):
        # A scheduler wired without a broker directory must reject broker
        # jobs up front with a spec error, not hang waiting for workers.
        from repro.engine.cancel import CancelToken
        from repro.errors import SpecificationError
        from repro.service.jobs import JobStore
        from repro.service.scheduler import JobScheduler

        scheduler = JobScheduler(JobStore(tmp_path / "jobs"), broker_dir=None)
        record, coalesced = scheduler.submit(
            {
                "kind": "campaign",
                "grid": {"resolutions": [10]},
                "config": {"backend": "broker"},
            }
        )
        assert coalesced is False
        with pytest.raises(SpecificationError, match="no task broker"):
            scheduler._execute(record, CancelToken())
