"""JobScheduler: queueing discipline, coalescing, drain/recovery."""

import asyncio

import pytest

from repro.campaign import CampaignGrid, run_campaign
from repro.engine.config import FlowConfig
from repro.errors import SpecificationError
from repro.service.jobs import JobStore
from repro.service.scheduler import TERMINAL_STATES, JobScheduler


def campaign_body(bits, client="anon", priority=0, **config):
    return {
        "kind": "campaign",
        "grid": {"resolutions": list(bits)},
        "config": config,
        "client": client,
        "priority": priority,
    }


async def wait_idle(scheduler, timeout=60.0):
    """Wait until the queue is empty and nothing is running."""
    async def _poll():
        while True:
            stats = scheduler.stats()
            if not stats["queued"] and not stats["running"]:
                return
            await asyncio.sleep(0.01)

    await asyncio.wait_for(_poll(), timeout)


def patch_execute(monkeypatch, order, delay=0.0):
    """Replace the blocking flow with an order-recording stub."""
    import time as _time

    def fake_execute(self, record, token):
        order.append((record.client, record.key))
        if delay:
            _time.sleep(delay)
        self.store.write_result(record.key, b"{}\n")

    monkeypatch.setattr(JobScheduler, "_execute", fake_execute)


class TestQueueDiscipline:
    def test_priority_buckets_drain_lowest_first(self, tmp_path, monkeypatch):
        order = []
        patch_execute(monkeypatch, order)

        async def scenario():
            scheduler = JobScheduler(JobStore(tmp_path), job_workers=1)
            low = scheduler.submit(campaign_body([10], priority=5))[0]
            urgent = scheduler.submit(campaign_body([11], priority=-1))[0]
            normal = scheduler.submit(campaign_body([12], priority=0))[0]
            await scheduler.start()
            await wait_idle(scheduler)
            await scheduler.drain()
            return [key for _, key in order], (urgent.key, normal.key, low.key)

        executed, expected = asyncio.run(scenario())
        assert executed == list(expected)

    def test_clients_round_robin_within_a_priority(self, tmp_path, monkeypatch):
        order = []
        patch_execute(monkeypatch, order)

        async def scenario():
            scheduler = JobScheduler(JobStore(tmp_path), job_workers=1)
            # alice floods three jobs before bob's single submission...
            for bits in ([10], [11], [12]):
                scheduler.submit(campaign_body(bits, client="alice"))
            scheduler.submit(campaign_body([13], client="bob"))
            await scheduler.start()
            await wait_idle(scheduler)
            await scheduler.drain()
            return [client for client, _ in order]

        clients = asyncio.run(scenario())
        # ...yet bob's job runs second, not fourth.
        assert clients == ["alice", "bob", "alice", "alice"]

    def test_cancel_dequeues_a_queued_job(self, tmp_path, monkeypatch):
        order = []
        patch_execute(monkeypatch, order)

        async def scenario():
            scheduler = JobScheduler(JobStore(tmp_path), job_workers=1)
            keep = scheduler.submit(campaign_body([10]))[0]
            drop = scheduler.submit(campaign_body([11]))[0]
            assert scheduler.cancel(drop.key) is True
            assert drop.state == "cancelled"
            assert scheduler.cancel(drop.key) is False  # already terminal
            await scheduler.start()
            await wait_idle(scheduler)
            await scheduler.drain()
            return [key for _, key in order], keep.key

        executed, kept = asyncio.run(scenario())
        assert executed == [kept]

    def test_submit_while_draining_is_refused(self, tmp_path):
        async def scenario():
            scheduler = JobScheduler(JobStore(tmp_path), job_workers=1)
            await scheduler.start()
            await scheduler.drain()
            with pytest.raises(SpecificationError, match="draining"):
                scheduler.submit(campaign_body([10]))

        asyncio.run(scenario())


class TestCoalescing:
    def test_identical_submissions_share_one_execution(self, tmp_path, monkeypatch):
        order = []
        patch_execute(monkeypatch, order)

        async def scenario():
            scheduler = JobScheduler(JobStore(tmp_path), job_workers=2)
            first, coalesced_first = scheduler.submit(campaign_body([10, 11]))
            for _ in range(4):
                record, coalesced = scheduler.submit(campaign_body([10, 11]))
                assert coalesced is True
                assert record is first
            await scheduler.start()
            await wait_idle(scheduler)
            await scheduler.drain()
            return coalesced_first, first, scheduler.stats()

        coalesced_first, record, stats = asyncio.run(scenario())
        assert coalesced_first is False
        assert record.submissions == 5
        assert record.state == "done"
        assert len(order) == 1
        assert stats["submissions"] == 5
        assert stats["coalesced"] == 4
        assert stats["executions"] == 1

    def test_urgent_coalesced_submission_escalates_priority(
        self, tmp_path, monkeypatch
    ):
        order = []
        patch_execute(monkeypatch, order)

        async def scenario():
            scheduler = JobScheduler(JobStore(tmp_path), job_workers=1)
            ahead = scheduler.submit(campaign_body([12], priority=0))[0]
            parked = scheduler.submit(campaign_body([10], priority=5))[0]
            # An identical but urgent submission must not wait at 5.
            again, coalesced = scheduler.submit(campaign_body([10], priority=-1))
            assert coalesced is True and again is parked
            assert parked.priority == -1
            # A *less* urgent duplicate never de-escalates.
            scheduler.submit(campaign_body([10], priority=9))
            assert parked.priority == -1
            await scheduler.start()
            await wait_idle(scheduler)
            await scheduler.drain()
            return [key for _, key in order], parked.key, ahead.key

        executed, parked_key, ahead_key = asyncio.run(scenario())
        assert executed == [parked_key, ahead_key]

    def test_done_jobs_coalesce_without_reexecution(self, tmp_path, monkeypatch):
        order = []
        patch_execute(monkeypatch, order)

        async def scenario():
            scheduler = JobScheduler(JobStore(tmp_path), job_workers=1)
            await scheduler.start()
            record, _ = scheduler.submit(campaign_body([10]))
            await wait_idle(scheduler)
            assert record.state == "done"
            again, coalesced = scheduler.submit(campaign_body([10]))
            assert coalesced is True and again.state == "done"
            await scheduler.drain()

        asyncio.run(scenario())
        assert len(order) == 1

    def test_done_job_with_lost_result_reexecutes_on_resubmission(
        self, tmp_path, monkeypatch
    ):
        order = []
        patch_execute(monkeypatch, order)

        async def scenario():
            scheduler = JobScheduler(JobStore(tmp_path), job_workers=1)
            await scheduler.start()
            record, _ = scheduler.submit(campaign_body([10]))
            await wait_idle(scheduler)
            assert record.state == "done"
            # Someone deletes the artifacts while the server is live: the
            # resubmission must re-enqueue (and actually run), not park the
            # record as 'queued' outside every bucket.
            (scheduler.store.result_dir(record.key) / "result.json").unlink()
            again, coalesced = scheduler.submit(campaign_body([10]))
            assert coalesced is False and again is record
            await wait_idle(scheduler)
            assert record.state == "done"
            assert scheduler.store.result_ready(record.key)
            await scheduler.drain()

        asyncio.run(scenario())
        assert len(order) == 2  # executed once per submission

    def test_failed_jobs_reenqueue_on_resubmission(self, tmp_path, monkeypatch):
        attempts = []

        def flaky_execute(self, record, token):
            attempts.append(record.key)
            if len(attempts) == 1:
                raise RuntimeError("transient")
            self.store.write_result(record.key, b"{}\n")

        monkeypatch.setattr(JobScheduler, "_execute", flaky_execute)

        async def scenario():
            scheduler = JobScheduler(JobStore(tmp_path), job_workers=1)
            await scheduler.start()
            record, _ = scheduler.submit(campaign_body([10]))
            await wait_idle(scheduler)
            assert record.state == "failed"
            assert "transient" in record.error
            retry, coalesced = scheduler.submit(campaign_body([10]))
            assert coalesced is False and retry is record
            await wait_idle(scheduler)
            await scheduler.drain()
            return record

        record = asyncio.run(scenario())
        assert record.state == "done" and record.error is None
        assert len(attempts) == 2


class TestDrainAndRecovery:
    def test_queued_jobs_recover_across_schedulers(self, tmp_path, monkeypatch):
        order = []
        patch_execute(monkeypatch, order)

        async def first_life():
            # Submit without ever starting workers: the persisted queue is
            # what a crash would leave behind.
            scheduler = JobScheduler(JobStore(tmp_path), job_workers=1)
            scheduler.submit(campaign_body([10]))
            scheduler.submit(campaign_body([11]))

        async def second_life():
            scheduler = JobScheduler(JobStore(tmp_path), job_workers=1)
            await scheduler.start()
            assert scheduler.counters["recovered"] == 2
            await wait_idle(scheduler)
            await scheduler.drain()
            return scheduler

        async def third_life():
            scheduler = JobScheduler(JobStore(tmp_path), job_workers=1)
            await scheduler.start()
            assert scheduler.counters["recovered"] == 0  # done jobs stay done
            states = [r.state for r in scheduler.jobs.values()]
            await scheduler.drain()
            return states

        asyncio.run(first_life())
        asyncio.run(second_life())
        assert len(order) == 2
        assert asyncio.run(third_life()) == ["done", "done"]
        assert len(order) == 2  # nothing recomputed

    def test_drain_requeues_midflight_campaign_and_resume_is_byte_identical(
        self, tmp_path
    ):
        """The acceptance scenario: SIGTERM-equivalent drain mid-campaign,
        restart, and a final store byte-identical to an uninterrupted run."""
        body = {
            "kind": "campaign",
            "grid": {"resolutions": [10, 11, 12], "modes": ["synthesis"]},
            "config": {
                "budget": 120,
                "retarget_budget": 40,
                "verify_transient": False,
            },
        }

        async def interrupted_life():
            scheduler = JobScheduler(JobStore(tmp_path / "svc"), job_workers=1)
            await scheduler.start()
            record, _ = scheduler.submit(body)
            events = scheduler.subscribe(record.key)
            # Drain as soon as the first scenario commits its checkpoint.
            while True:
                event = await asyncio.wait_for(events.get(), timeout=120)
                if event["event"] == "scenario":
                    break
            await scheduler.drain()
            return record

        record = asyncio.run(interrupted_life())
        # The drain interrupted the job at a scenario boundary (if the last
        # scenario raced the cancel the job may have finished; both are
        # legal — but the common path is a requeue with partial progress).
        assert record.state in ("queued", "done")

        async def resumed_life():
            scheduler = JobScheduler(JobStore(tmp_path / "svc"), job_workers=1)
            await scheduler.start()
            await wait_idle(scheduler, timeout=300)
            await scheduler.drain()
            (job,) = scheduler.jobs.values()
            assert job.state == "done"
            return scheduler.store.campaign_store_dir(job.key)

        store_dir = asyncio.run(resumed_life())

        reference = tmp_path / "reference"
        run_campaign(
            CampaignGrid(resolutions=(10, 11, 12), modes=("synthesis",)),
            config=FlowConfig(
                budget=120, retarget_budget=40, verify_transient=False
            ),
            store_dir=reference,
        )
        for name in ("results.jsonl", "report.txt", "manifest.json"):
            assert (store_dir / name).read_bytes() == (
                reference / name
            ).read_bytes(), name
