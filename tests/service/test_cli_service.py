"""The ``repro-adc serve`` / ``submit`` / ``jobs`` commands."""

import pytest

from repro.campaign import CampaignGrid, run_campaign
from repro.cli import main
from repro.service import BackgroundServer


@pytest.fixture
def server(tmp_path):
    with BackgroundServer(store_dir=tmp_path / "svc") as background:
        yield background


class TestSubmitCommand:
    def test_submit_fetch_matches_direct_campaign(
        self, server, tmp_path, capsys
    ):
        fetched = tmp_path / "fetched"
        assert (
            main(
                [
                    "submit",
                    "--url",
                    server.base_url,
                    "--bits",
                    "10-11",
                    "--fetch",
                    str(fetched),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "job " in out
        assert "Campaign comparison" in out  # the fetched report is printed

        direct = tmp_path / "direct"
        run_campaign(CampaignGrid(resolutions=(10, 11)), store_dir=direct)
        for name in ("results.jsonl", "report.txt", "manifest.json"):
            assert (fetched / name).read_bytes() == (
                direct / name
            ).read_bytes(), name

    def test_second_submission_reports_coalescing(self, server, capsys):
        args = ["submit", "--url", server.base_url, "--bits", "12", "--watch"]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        assert "coalesced" in capsys.readouterr().out

    def test_optimize_submission_prints_result(self, server, capsys):
        assert (
            main(
                [
                    "submit",
                    "--url",
                    server.base_url,
                    "--kind",
                    "optimize",
                    "--bits",
                    "11",
                    "--watch",
                ]
            )
            == 0
        )
        assert '"winner"' in capsys.readouterr().out

    def test_optimize_defaults_work_out_of_the_box(self, server, capsys):
        # The campaign-oriented --bits default must not break the
        # documented optimize mode: with no flags it submits one spec.
        assert (
            main(
                [
                    "submit",
                    "--url",
                    server.base_url,
                    "--kind",
                    "optimize",
                    "--watch",
                ]
            )
            == 0
        )
        assert '"winner"' in capsys.readouterr().out

    def test_optimize_with_axis_bits_is_a_friendly_error(self, server, capsys):
        assert (
            main(
                [
                    "submit",
                    "--url",
                    server.base_url,
                    "--kind",
                    "optimize",
                    "--bits",
                    "10-13",
                ]
            )
            == 2
        )
        err = capsys.readouterr().err
        assert err.startswith("repro-adc: error:")
        assert "single resolution" in err

    def test_unreachable_service_is_a_friendly_error(self, capsys):
        assert main(["submit", "--url", "http://127.0.0.1:1", "--bits", "12"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro-adc: error:")
        assert "cannot reach" in err


class TestJobsCommand:
    def test_lists_jobs_and_stats(self, server, capsys):
        assert (
            main(["submit", "--url", server.base_url, "--bits", "12", "--watch"])
            == 0
        )
        capsys.readouterr()
        assert main(["jobs", "--url", server.base_url, "--stats"]) == 0
        out = capsys.readouterr().out
        assert "campaign" in out and "done" in out
        assert '"executions": 1' in out

    def test_empty_service(self, server, capsys):
        assert main(["jobs", "--url", server.base_url]) == 0
        assert "no jobs" in capsys.readouterr().out


class TestServeCommand:
    def test_store_path_collision_is_a_friendly_error(self, tmp_path, capsys):
        collision = tmp_path / "not-a-dir"
        collision.write_text("occupied", encoding="utf-8")
        assert main(["serve", "--store", str(collision)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro-adc: error:")
        assert "not a directory" in err
