"""The versioned HTTP surface: /v1/ routes, legacy aliases, Deprecation."""

import json
from http.client import HTTPConnection
from urllib.parse import urlsplit

import pytest

from repro.service import BackgroundServer, ServiceClient


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    store = tmp_path_factory.mktemp("versioning") / "svc"
    with BackgroundServer(store_dir=store) as background:
        yield background


def _raw(server, method: str, path: str, body: dict | None = None):
    """One raw request; returns (status, headers-dict, body-bytes)."""
    split = urlsplit(server.base_url)
    connection = HTTPConnection(split.hostname, split.port, timeout=10)
    try:
        payload = json.dumps(body).encode() if body is not None else None
        connection.request(
            method,
            path,
            body=payload,
            headers={"Content-Type": "application/json"} if payload else {},
        )
        response = connection.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        connection.close()


class TestVersionedRoutes:
    def test_v1_routes_answer_without_deprecation(self, server):
        status, headers, body = _raw(server, "GET", "/v1/healthz")
        assert status == 200
        assert "Deprecation" not in headers
        assert json.loads(body)["status"] == "ok"

    def test_legacy_aliases_answer_with_deprecation(self, server):
        for path in ("/healthz", "/stats", "/jobs"):
            status, headers, _ = _raw(server, "GET", path)
            assert status == 200, path
            assert headers.get("Deprecation") == "true", path

    def test_v1_and_legacy_serve_identical_bodies(self, server):
        _, _, legacy = _raw(server, "GET", "/stats")
        _, _, versioned = _raw(server, "GET", "/v1/stats")
        assert json.loads(legacy) == json.loads(versioned)

    def test_legacy_errors_also_carry_deprecation(self, server):
        status, headers, _ = _raw(server, "GET", "/jobs/nonexistent")
        assert status == 404
        assert headers.get("Deprecation") == "true"
        status, headers, _ = _raw(server, "GET", "/v1/jobs/nonexistent")
        assert status == 404
        assert "Deprecation" not in headers

    def test_unknown_version_prefix_is_not_a_route(self, server):
        status, _, body = _raw(server, "GET", "/v2/healthz")
        assert status == 404
        # /v2/... is treated as a legacy path that happens not to exist,
        # not as a future version this server half-understands.

    def test_submit_via_v1_roundtrip(self, server):
        status, headers, body = _raw(
            server,
            "POST",
            "/v1/jobs",
            {"kind": "campaign", "grid": {"resolutions": [10]}},
        )
        assert status == 200
        assert "Deprecation" not in headers
        job_id = json.loads(body)["job"]["id"]
        client = ServiceClient(server.base_url)
        assert client.wait(job_id)["state"] == "done"


class TestBrokerRoutesAreV1Only:
    def test_unversioned_broker_routes_404(self, server):
        status, _, body = _raw(server, "GET", "/broker/stats")
        assert status == 404
        assert "/v1" in json.loads(body)["error"]
        status, _, _ = _raw(server, "POST", "/broker/lease", {"worker": "w"})
        assert status == 404

    def test_v1_broker_stats_serves(self, server):
        status, headers, body = _raw(server, "GET", "/v1/broker/stats")
        assert status == 200
        assert "Deprecation" not in headers
        stats = json.loads(body)
        assert stats["pending"] == 0 and stats["leases"] == 0

    def test_malformed_task_keys_are_rejected(self, server):
        status, _, body = _raw(
            server, "GET", "/v1/broker/results/../../../etc/passwd"
        )
        assert status in (400, 404)
        status, _, body = _raw(
            server,
            "POST",
            "/v1/broker/tasks",
            {"key": "../escape", "envelope": {}},
        )
        assert status == 400
        assert "malformed task key" in json.loads(body)["error"]


class TestClientSpeaksV1:
    def test_client_requests_carry_the_version_prefix(self, server):
        # The stdlib client's paths are hard-coded; assert at the source
        # level so a stray unversioned path cannot sneak back in.
        import inspect

        import repro.service.client as client_module

        source = inspect.getsource(client_module)
        for route in ("/jobs", "/stats", "/healthz", "/drain"):
            assert f'"{route}' not in source.replace(f'"/v1{route}', ""), route

    def test_client_works_end_to_end(self, server):
        client = ServiceClient(server.base_url)
        assert client.health()["status"] == "ok"


class TestObservabilityRoutes:
    def test_v1_metrics_serves_the_registry(self, server):
        from repro.obs import metrics

        metrics.counter("test.versioning.ping", 3)
        status, headers, body = _raw(server, "GET", "/v1/metrics")
        assert status == 200
        assert "Deprecation" not in headers
        payload = json.loads(body)
        assert payload["telemetry"] in ("off", "metrics", "trace")
        assert payload["metrics"]["counters"]["test.versioning.ping"] == 3

    def test_unversioned_metrics_is_not_a_route(self, server):
        status, _, body = _raw(server, "GET", "/metrics")
        assert status == 404
        assert "/v1" in json.loads(body)["error"]

    def test_worker_census_roundtrip(self, server):
        status, _, body = _raw(
            server,
            "POST",
            "/v1/broker/workers",
            {"record": {"worker": "w-http", "executed": 2}},
        )
        assert status == 200 and json.loads(body) == {"ok": True}
        status, _, body = _raw(server, "GET", "/v1/broker/workers")
        assert status == 200
        records = {r["worker"]: r for r in json.loads(body)["workers"]}
        assert records["w-http"]["executed"] == 2
        # The census also rides the stats payload the CLI status view reads.
        _, _, body = _raw(server, "GET", "/v1/broker/stats")
        assert "w-http" in {r["worker"] for r in json.loads(body)["workers"]}

    def test_http_broker_client_speaks_the_census_routes(self, server):
        from repro.engine.broker import HttpBroker

        broker = HttpBroker(server.base_url)
        broker.register_worker({"worker": "w-client", "busy_seconds": 1.5})
        records = {r["worker"]: r for r in broker.workers()}
        assert records["w-client"]["busy_seconds"] == 1.5

    def test_census_registration_validation(self, server):
        status, _, body = _raw(server, "POST", "/v1/broker/workers", {})
        assert status == 400
        assert "record" in json.loads(body)["error"]
        status, _, body = _raw(
            server, "POST", "/v1/broker/workers", {"record": {"worker": "  "}}
        )
        assert status == 400
        assert "worker" in json.loads(body)["error"]
