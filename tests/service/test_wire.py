"""The wire module: round-trips, schema gates, and byte-stability contracts."""

import json

import pytest

from repro.engine.persist import digest
from repro.engine.scheduler import SynthesisJob
from repro.service import wire
from repro.specs.adc import AdcSpec
from repro.tech import CMOS025


def _job(**overrides) -> SynthesisJob:
    spec = AdcSpec(resolution_bits=10)
    fields = dict(
        spec=spec, tech=CMOS025, budget=60, seed=1, verify_transient=False
    )
    fields.update(overrides)
    return SynthesisJob(**fields)


class TestTaskEnvelopes:
    def test_roundtrip(self):
        envelope = wire.encode_task(digest, {"n": [1, 2, 3]})
        assert envelope["schema"] == wire.WIRE_SCHEMA
        fn_name, task = wire.decode_task(envelope)
        assert fn_name == "repro.engine.persist.digest"
        assert task == {"n": [1, 2, 3]}

    def test_envelope_is_json_serializable(self):
        envelope = wire.encode_task(digest, {"n": 1})
        assert json.loads(json.dumps(envelope)) == envelope

    def test_rejects_newer_schema(self):
        envelope = wire.encode_task(digest, {"n": 1})
        envelope["schema"] = wire.WIRE_SCHEMA + 1
        with pytest.raises(ValueError, match="newer"):
            wire.decode_task(envelope)

    def test_rejects_missing_or_undotted_fn(self):
        envelope = wire.encode_task(digest, {"n": 1})
        for bad in (None, "", "digest", 42):
            mutated = {**envelope, "fn": bad}
            with pytest.raises(ValueError, match="importable fn"):
                wire.decode_task(mutated)

    def test_rejects_unreadable_body(self):
        envelope = wire.encode_task(digest, {"n": 1})
        for bad in ("!!! not base64 !!!", "gA==", None):
            with pytest.raises(ValueError, match="unreadable"):
                wire.decode_task({**envelope, "task_pkl": bad})
        with pytest.raises(ValueError):
            wire.decode_task("not a dict")

    def test_function_name_is_importable_identity(self):
        assert wire.function_name(digest) == "repro.engine.persist.digest"


class TestResultPayloads:
    def test_raw_roundtrip(self):
        value = {"power": 1.25e-3, "labels": ("a", "b")}
        assert wire.decode_result(wire.encode_result(value)) == value

    def test_b64_roundtrip(self):
        payload = wire.encode_result([1, 2, 3])
        assert wire.decode_result_b64(wire.encode_result_b64(payload)) == payload

    def test_b64_rejects_garbage(self):
        with pytest.raises(ValueError, match="base64"):
            wire.decode_result_b64("!!! definitely not base64 !!!")


class TestRestrictedUnpickling:
    """The RCE gate: wire payloads decode through an allow-list, not pickle."""

    def test_repro_classes_and_plain_data_round_trip(self):
        import numpy as np

        job = _job()
        payload = wire.encode_result(
            {"job": job, "gains": np.asarray([0.5, 1.0]), "label": ("a", 1)}
        )
        decoded = wire.restricted_loads(payload)
        assert decoded["job"] == job
        assert decoded["gains"].tolist() == [0.5, 1.0]

    def test_stdlib_call_gadgets_are_blocked(self):
        import pickle

        class Gadget:
            def __reduce__(self):
                import os

                return (os.system, ("true",))

        payload = pickle.dumps(Gadget())
        with pytest.raises(pickle.UnpicklingError, match="may not reference"):
            wire.restricted_loads(payload)

    def test_builtins_beyond_data_types_are_blocked(self):
        import pickle

        class Gadget:
            def __reduce__(self):
                return (eval, ("1+1",))

        with pytest.raises(pickle.UnpicklingError, match="may not reference"):
            wire.restricted_loads(pickle.dumps(Gadget()))

    def test_repro_functions_are_blocked(self):
        # Classes reconstruct state; module-level *functions* are REDUCE
        # call gadgets even inside our own package (atomic_write_bytes
        # would be a file-write primitive), so only classes pass.
        import pickle

        class Gadget:
            def __reduce__(self):
                return (wire.canonical_json, ({},))

        with pytest.raises(pickle.UnpicklingError, match="classes"):
            wire.restricted_loads(pickle.dumps(Gadget()))

    def test_decode_task_rejects_gadget_payloads_as_unreadable(self):
        import base64
        import pickle

        class Gadget:
            def __reduce__(self):
                import os

                return (os.system, ("true",))

        envelope = wire.encode_task(digest, {"n": 1})
        envelope["task_pkl"] = base64.b64encode(
            pickle.dumps(Gadget())
        ).decode("ascii")
        with pytest.raises(ValueError, match="unreadable"):
            wire.decode_task(envelope)


class TestLeases:
    def test_v1_roundtrip(self):
        body = wire.lease_body(pid=1234, worker="w1", host="h", deadline=42.5)
        parsed = wire.parse_lease(body)
        assert parsed == {
            "pid": 1234,
            "worker": "w1",
            "host": "h",
            "deadline": 42.5,
        }
        assert json.loads(body)["schema"] == wire.WIRE_SCHEMA

    def test_optional_fields_stay_out_of_the_body(self):
        assert json.loads(wire.lease_body(pid=1)) == {
            "schema": wire.WIRE_SCHEMA,
            "pid": 1,
        }

    def test_pr4_dict_lease_parses(self):
        parsed = wire.parse_lease(json.dumps({"pid": 77}))
        assert parsed["pid"] == 77
        assert parsed["worker"] is None and parsed["deadline"] is None

    def test_bare_int_lease_parses(self):
        assert wire.parse_lease("88")["pid"] == 88

    @pytest.mark.parametrize(
        "garbage", ["", "{truncated", "\x00\xff binary", "[]", '{"pid": "x"}']
    )
    def test_garbage_parses_to_a_dead_claim(self, garbage):
        parsed = wire.parse_lease(garbage)
        assert parsed["pid"] == 0
        assert parsed["deadline"] is None


class TestSynthesisTaskPayload:
    def test_matches_queue_payload(self):
        job = _job()
        assert wire.synthesis_task_payload(job) == job.queue_payload()

    def test_exact_pr4_shape(self):
        # Hand-built expected dict: the digest of this payload keys every
        # persisted ack, so any key/default drift here is a broken store.
        job = _job()
        assert wire.synthesis_task_payload(job) == {
            "kind": "synthesis_job",
            "spec": job.spec,
            "tech": job.tech,
            "budget": 60,
            "seed": 1,
            "verify_transient": False,
            "donor": None,
            "retarget_budget": 80,
            "retarget_seed": 7,
        }

    def test_dc_kernel_enters_only_when_non_default(self):
        assert "dc_kernel" not in wire.synthesis_task_payload(_job())
        batched = wire.synthesis_task_payload(_job(dc_kernel="batched"))
        assert batched["dc_kernel"] == "batched"

    def test_performance_knobs_never_enter_the_digest(self):
        base = digest(wire.synthesis_task_payload(_job()))
        tweaked = _job(
            eval_kernel="legacy", eval_speculation=4, template_dir="/tmp/x"
        )
        assert digest(wire.synthesis_task_payload(tweaked)) == base


class TestResultSummaries:
    def test_canonical_json_shape(self):
        blob = wire.canonical_json({"b": 1, "a": [1.5]})
        assert blob == b'{"a":[1.5],"b":1}\n'

    def test_campaign_payload_is_schema_tagged_canonical_json(self):
        class Record:
            label = "k10_40M_analytic"
            winner = "2-2-2-2-2-f"
            winner_power_w = 0.002
            fom_j_per_step = 1e-12

        payload = json.loads(wire.campaign_payload([Record()]))
        assert payload["schema"] == wire.WIRE_SCHEMA
        assert payload["kind"] == "campaign"
        assert payload["scenarios"][0]["label"] == "k10_40M_analytic"
        # Stable bytes: same records, same bytes.
        assert wire.campaign_payload([Record()]) == wire.campaign_payload(
            [Record()]
        )

    def test_topology_payload_matches_the_service_export(self):
        # The service re-exports wire's serializers; both names must be the
        # same object so the two serialization paths can never diverge.
        from repro.service import campaign_payload, topology_payload
        from repro.service.jobs import (
            campaign_payload as jobs_campaign,
            topology_payload as jobs_topology,
        )

        assert campaign_payload is wire.campaign_payload is jobs_campaign
        assert topology_payload is wire.topology_payload is jobs_topology
