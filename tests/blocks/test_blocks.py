"""Block-level tests: opamps, MDAC network, sub-ADC, S/H."""

import numpy as np
import pytest

from repro.analysis import ac_transfer, linearize, solve_dc
from repro.blocks import (
    FlashSubAdc,
    MdacNetwork,
    SampleAndHold,
    TwoStageSizing,
    build_settling_bench,
    build_two_stage_miller,
    residue_transfer,
)
from repro.blocks.comparator import BehavioralComparator
from repro.blocks.opamp import FoldedCascodeSizing
from repro.blocks.opamp_library import build_folded_cascode
from repro.circuit.builder import CircuitBuilder
from repro.circuit.netlist import Circuit
from repro.enumeration.candidates import PipelineCandidate
from repro.errors import SpecificationError
from repro.specs import AdcSpec, plan_stages
from repro.tech import CMOS025


def biased_two_stage(sizing=None):
    """Two-stage amp in its unity-feedback bias testbench."""
    amp = build_two_stage_miller(CMOS025, sizing or TwoStageSizing())
    bench = Circuit("tb2")
    for e in amp:
        bench.add(e)
    b = CircuitBuilder("tb", tech=CMOS025)
    b.v("vdd", "gnd", dc=3.3, name="vdd_src")
    b.v("inp", "gnd", dc=1.485, ac=1.0, name="vin_src")
    b.r("out", "inm", 1e9, name="rfb")
    b.c("inm", "gnd", 1e-6, name="cfb")
    b.c("out", "gnd", 0.5e-12, name="cl")
    for e in b.circuit:
        bench.add(e)
    guess = {"vdd": 3.3, "inp": 1.485, "inm": 1.485, "out": 1.485,
             "o1": 2.4, "x": 2.4, "nbias": 0.8, "tail": 0.5, "nz": 1.485}
    return bench, solve_dc(bench, initial_guess=guess)


class TestTwoStageOpamp:
    def test_all_signal_devices_saturated(self):
        _, op = biased_two_stage()
        for name in ("m1", "m2", "m3", "m4", "m6", "m7", "mtail"):
            assert op.device_ops[name].region == "saturation", name

    def test_dc_gain_is_large(self):
        bench, op = biased_two_stage()
        lin = linearize(bench, op, include_noise=False)
        a0 = abs(ac_transfer(lin, "out", np.array([1e2]))[0])
        assert a0 > 500

    def test_output_self_biases_near_input_cm(self):
        _, op = biased_two_stage()
        assert op.voltages["out"] == pytest.approx(1.485, abs=0.05)

    def test_gain_rolls_off(self):
        bench, op = biased_two_stage()
        lin = linearize(bench, op, include_noise=False)
        mags = np.abs(ac_transfer(lin, "out", np.array([1e3, 1e8])))
        assert mags[1] < mags[0] / 10

    def test_folded_cascode_biases(self):
        amp = build_folded_cascode(CMOS025, FoldedCascodeSizing())
        bench = Circuit("tbfc")
        for e in amp:
            bench.add(e)
        b = CircuitBuilder("tb", tech=CMOS025)
        b.v("vdd", "gnd", dc=3.3, name="vdd_src")
        b.v("inp", "gnd", dc=1.4, ac=1.0, name="vin_src")
        b.r("out", "inm", 1e9, name="rfb")
        b.c("inm", "gnd", 1e-6, name="cfb")
        b.c("out", "gnd", 0.5e-12, name="cl")
        for e in b.circuit:
            bench.add(e)
        op = solve_dc(bench, initial_guess={"vdd": 3.3, "inp": 1.4, "inm": 1.4,
                                            "out": 1.4, "tail": 0.6})
        # Input pair carries roughly half the tail current each.
        i1 = op.device_ops["m1"].ids
        i2 = op.device_ops["m2"].ids
        assert i1 == pytest.approx(i2, rel=0.2)
        assert i1 + i2 == pytest.approx(FoldedCascodeSizing().i_tail, rel=0.3)


class TestMdacNetwork:
    def spec(self):
        plan = plan_stages(AdcSpec(resolution_bits=13), PipelineCandidate((4, 3, 2), 13, 7))
        return plan.mdacs[0]

    def test_from_spec_round_trips_beta_and_gain(self):
        mdac = self.spec()
        network = MdacNetwork.from_spec(mdac)
        assert network.gain == pytest.approx(mdac.gain)
        assert network.beta == pytest.approx(mdac.beta, rel=1e-9)

    def test_c_eff_matches_spec(self):
        mdac = self.spec()
        network = MdacNetwork.from_spec(mdac)
        assert network.c_eff == pytest.approx(mdac.c_eff, rel=0.02)

    def test_settling_bench_settles_to_ideal(self):
        # With a near-ideal (well-sized) opamp the bench must settle to
        # -Cs/Cf * step within tight tolerance.
        from repro.analysis import simulate_transient

        network = MdacNetwork(cs=200e-15, cf=200e-15, c_in=40e-15, c_load=300e-15)
        amp = build_two_stage_miller(CMOS025, TwoStageSizing())
        bench, ideal = build_settling_bench(
            amp, network, CMOS025, step_voltage=-0.5, common_mode=1.485
        )
        result = simulate_transient(bench, t_stop=26e-9, dt=0.05e-9, record=["out"])
        v = result.voltage("out")
        start = float(v[np.searchsorted(result.time, 1e-9) - 1])
        settled = float(v[-1]) - start
        assert ideal == pytest.approx(0.5)
        assert settled == pytest.approx(ideal, rel=5e-3)


class TestResidueTransfer:
    def test_1p5_bit_cases(self):
        # 1.5-bit: residue = 2 vin - d * FS/2, d in {-1, 0, 1}.
        assert residue_transfer(0, 2, -0.4, 2.0) == pytest.approx(-0.8 + 1.0)
        assert residue_transfer(1, 2, 0.1, 2.0) == pytest.approx(0.2)
        assert residue_transfer(2, 2, 0.4, 2.0) == pytest.approx(0.8 - 1.0)

    def test_residue_stays_in_range_with_ideal_codes(self):
        sub = FlashSubAdc(3, 2.0)
        for vin in np.linspace(-0.99, 0.99, 101):
            code = sub.quantize(vin)
            r = residue_transfer(code, 3, vin, 2.0)
            assert abs(r) <= 1.0 + 1e-9

    def test_bad_code_rejected(self):
        with pytest.raises(SpecificationError):
            residue_transfer(7, 3, 0.0, 2.0)


class TestSubAdc:
    def test_comparator_count(self):
        assert len(FlashSubAdc(2, 2.0).comparators) == 2
        assert len(FlashSubAdc(4, 2.0).comparators) == 14

    def test_thresholds_symmetric(self):
        th = FlashSubAdc(3, 2.0).ideal_thresholds()
        assert th == pytest.approx([-t for t in reversed(th)])

    def test_quantize_monotone(self):
        sub = FlashSubAdc(3, 2.0)
        codes = [sub.quantize(v) for v in np.linspace(-1, 1, 41)]
        assert codes == sorted(codes)
        assert min(codes) == 0 and max(codes) == 6

    def test_offsets_change_decisions(self):
        plain = FlashSubAdc(2, 2.0)
        shifted = FlashSubAdc.with_offsets(2, 2.0, [0.3, 0.3])
        v = -0.27  # just below the ideal -FS/8 threshold
        assert plain.quantize(v) != shifted.quantize(v)

    def test_wrong_offset_count_rejected(self):
        with pytest.raises(SpecificationError):
            FlashSubAdc.with_offsets(3, 2.0, [0.0])


class TestSampleAndHoldAndComparator:
    def test_sah_gain_error(self):
        assert SampleAndHold(gain_error=0.01).sample(1.0) == pytest.approx(1.01)

    def test_sah_noise_requires_rng(self):
        with pytest.raises(ValueError):
            SampleAndHold(noise_rms=1e-3).sample(1.0)

    def test_comparator_offset(self):
        comp = BehavioralComparator(threshold=0.0, offset=0.1)
        assert comp.decide(-0.05)  # offset pushes it over
        assert not comp.decide(-0.2)
