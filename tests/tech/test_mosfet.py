"""Unit tests for the compact MOSFET model."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tech import CMOS025, dc_current, operating_point
from repro.tech.mosfet import flicker_noise_psd, thermal_noise_psd

NMOS = CMOS025.nmos
PMOS = CMOS025.pmos
W, L = 10e-6, 0.5e-6


class TestSquareLaw:
    def test_current_scales_with_width(self):
        id1, _, _, _ = dc_current(NMOS, W, L, 1.0, 1.5)
        id2, _, _, _ = dc_current(NMOS, 2 * W, L, 1.0, 1.5)
        assert id2 == pytest.approx(2 * id1, rel=1e-9)

    def test_current_increases_with_vgs(self):
        id1, _, _, _ = dc_current(NMOS, W, L, 0.9, 1.5)
        id2, _, _, _ = dc_current(NMOS, W, L, 1.1, 1.5)
        assert id2 > id1

    def test_saturation_current_magnitude(self):
        # Long channel, weak velocity saturation: Id ~ (kp/2)(W/L)Vov^2.
        vov = 0.3
        ids, _, _, _ = dc_current(NMOS, W, 2e-6, NMOS.vth0 + vov, 1.5)
        expected = 0.5 * NMOS.kp * (W / 2e-6) * vov**2
        assert ids == pytest.approx(expected, rel=0.15)

    def test_cutoff_current_is_small(self):
        ids, _, _, _ = dc_current(NMOS, W, L, 0.2, 1.5)
        on, _, _, _ = dc_current(NMOS, W, L, 1.0, 1.5)
        assert abs(ids) < 1e-3 * abs(on)

    def test_triode_region_current_rises_with_vds(self):
        i1, _, _, _ = dc_current(NMOS, W, L, 1.5, 0.05)
        i2, _, _, _ = dc_current(NMOS, W, L, 1.5, 0.15)
        assert i2 > i1 > 0

    def test_channel_length_modulation(self):
        i1, _, _, _ = dc_current(NMOS, W, L, 1.0, 1.0)
        i2, _, _, _ = dc_current(NMOS, W, L, 1.0, 2.0)
        assert i2 > i1
        assert i2 < 1.5 * i1  # CLM is a mild effect

    def test_velocity_saturation_reduces_current(self):
        # The same W/L at shorter L has *less* than (L1/L2)x the current
        # per square because esat*L shrinks.
        vgs, vds = 1.5, 2.0
        i_long, _, _, _ = dc_current(NMOS, 10e-6, 1.0e-6, vgs, vds)
        i_short, _, _, _ = dc_current(NMOS, 2.5e-6, 0.25e-6, vgs, vds)
        # Same W/L ratio = 10; short channel must deliver less current.
        assert i_short < i_long


class TestDerivatives:
    """Analytic gm/gds/gmb must match finite differences everywhere."""

    @pytest.mark.parametrize("vgs", [0.3, 0.55, 0.8, 1.2, 2.0])
    @pytest.mark.parametrize("vds", [0.05, 0.3, 1.0, 2.5])
    def test_gm_matches_finite_difference(self, vgs, vds):
        h = 1e-7
        _, gm, _, _ = dc_current(NMOS, W, L, vgs, vds)
        ip, _, _, _ = dc_current(NMOS, W, L, vgs + h, vds)
        im, _, _, _ = dc_current(NMOS, W, L, vgs - h, vds)
        fd = (ip - im) / (2 * h)
        assert gm == pytest.approx(fd, rel=1e-4, abs=1e-12)

    @pytest.mark.parametrize("vgs", [0.55, 0.8, 1.2])
    @pytest.mark.parametrize("vds", [-1.0, -0.2, 0.05, 0.3, 1.0, 2.5])
    def test_gds_matches_finite_difference(self, vgs, vds):
        h = 1e-7
        _, _, gds, _ = dc_current(NMOS, W, L, vgs, vds)
        ip, _, _, _ = dc_current(NMOS, W, L, vgs, vds + h)
        im, _, _, _ = dc_current(NMOS, W, L, vgs, vds - h)
        fd = (ip - im) / (2 * h)
        assert gds == pytest.approx(fd, rel=2e-3, abs=1e-9)

    @pytest.mark.parametrize("vbs", [-1.0, -0.4, 0.0])
    def test_gmb_matches_finite_difference(self, vbs):
        h = 1e-7
        _, _, _, gmb = dc_current(NMOS, W, L, 1.0, 1.5, vbs)
        ip, _, _, _ = dc_current(NMOS, W, L, 1.0, 1.5, vbs + h)
        im, _, _, _ = dc_current(NMOS, W, L, 1.0, 1.5, vbs - h)
        fd = (ip - im) / (2 * h)
        assert gmb == pytest.approx(fd, rel=1e-3, abs=1e-12)

    @settings(max_examples=200, deadline=None)
    @given(
        vgs=st.floats(min_value=-0.5, max_value=3.0),
        vds=st.floats(min_value=-3.0, max_value=3.0),
    )
    def test_gm_finite_difference_everywhere(self, vgs, vds):
        h = 1e-6
        _, gm, _, _ = dc_current(NMOS, W, L, vgs, vds)
        ip, _, _, _ = dc_current(NMOS, W, L, vgs + h, vds)
        im, _, _, _ = dc_current(NMOS, W, L, vgs - h, vds)
        fd = (ip - im) / (2 * h)
        assert gm == pytest.approx(fd, rel=1e-3, abs=1e-9)

    @settings(max_examples=200, deadline=None)
    @given(
        vgs=st.floats(min_value=-0.5, max_value=3.0),
        vds=st.floats(min_value=-3.0, max_value=3.0),
    )
    def test_current_is_continuous_in_vds(self, vgs, vds):
        h = 1e-9
        i0, _, _, _ = dc_current(NMOS, W, L, vgs, vds)
        i1, _, _, _ = dc_current(NMOS, W, L, vgs, vds + h)
        assert abs(i1 - i0) < 1e-3 * max(abs(i0), 1e-9) + 1e-9


class TestPolarityAndReverse:
    def test_pmos_mirror_symmetry(self):
        # A PMOS at (-vgs, -vds) carries exactly -1x the NMOS-equivalent current
        # computed from its own parameter set.
        ids_p, gm_p, gds_p, _ = dc_current(PMOS, W, L, -1.2, -1.5)
        assert ids_p < 0
        assert gm_p > 0 or gm_p < 0  # finite
        # Magnitude consistency: build an NMOS-like paramset from PMOS values.
        assert abs(ids_p) > 0

    def test_pmos_off_when_vgs_positive(self):
        ids, _, _, _ = dc_current(PMOS, W, L, 0.5, -1.5)
        on, _, _, _ = dc_current(PMOS, W, L, -1.5, -1.5)
        assert abs(ids) < 1e-3 * abs(on)

    def test_reverse_mode_antisymmetry(self):
        # Swapping drain and source negates the current when ALL control
        # voltages (including the bulk) are re-referenced to the new source:
        # terminals (g=1, d=-1, s=0, b=0) are the mirror of (g=2, d=1, s=0, b=1).
        i_fwd, _, _, _ = dc_current(NMOS, W, L, 2.0, 1.0, 1.0)
        i_rev, _, _, _ = dc_current(NMOS, W, L, 1.0, -1.0, 0.0)
        assert i_rev == pytest.approx(-i_fwd, rel=1e-9)

    def test_zero_vds_zero_current(self):
        ids, _, _, _ = dc_current(NMOS, W, L, 1.5, 0.0)
        assert ids == pytest.approx(0.0, abs=1e-12)

    @settings(max_examples=100, deadline=None)
    @given(
        vgs=st.floats(min_value=0.0, max_value=3.0),
        vds=st.floats(min_value=0.0, max_value=3.0),
    )
    def test_nmos_current_non_negative_forward(self, vgs, vds):
        ids, _, _, _ = dc_current(NMOS, W, L, vgs, vds)
        assert ids >= -1e-15


class TestOperatingPoint:
    def test_saturation_region_detected(self):
        op = operating_point(NMOS, W, L, 1.0, 2.0)
        assert op.region == "saturation"
        assert op.gm > 0
        assert op.cgs > op.cgd  # saturation: cgs dominated by 2/3 CoxWL

    def test_triode_region_detected(self):
        op = operating_point(NMOS, W, L, 2.5, 0.05)
        assert op.region == "triode"

    def test_cutoff_region_detected(self):
        op = operating_point(NMOS, W, L, 0.1, 1.0)
        assert op.region == "cutoff"
        assert op.cgb > 0

    def test_gm_over_id_reasonable(self):
        # Strong inversion gm/Id should be ~2/Vov, in the 1-15 1/V range.
        op = operating_point(NMOS, W, L, NMOS.vth0 + 0.25, 1.5)
        gm_over_id = op.gm / op.ids
        assert 4.0 < gm_over_id < 10.0

    def test_intrinsic_gain_reasonable(self):
        # gm/gds of a 0.5um device should be tens of V/V.
        op = operating_point(NMOS, W, 0.5e-6, NMOS.vth0 + 0.25, 1.5)
        assert 20.0 < op.gm / op.gds < 400.0

    def test_pmos_operating_point_sign(self):
        op = operating_point(PMOS, W, L, -1.2, -1.5)
        assert op.ids < 0
        assert op.region == "saturation"


class TestNoise:
    def test_thermal_noise_scales_with_gm(self):
        assert thermal_noise_psd(NMOS, 2e-3) == pytest.approx(
            2 * thermal_noise_psd(NMOS, 1e-3)
        )

    def test_flicker_noise_inverse_f(self):
        n1 = flicker_noise_psd(NMOS, W, L, 1e-3, 1e3)
        n2 = flicker_noise_psd(NMOS, W, L, 1e-3, 1e6)
        assert n1 / n2 == pytest.approx(1e3)

    def test_flicker_noise_needs_positive_frequency(self):
        with pytest.raises(ValueError):
            flicker_noise_psd(NMOS, W, L, 1e-3, 0.0)
