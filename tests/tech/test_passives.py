"""Unit tests for passive-component models."""

import math

import pytest

from repro.tech import CMOS025, capacitor_mismatch_sigma, switch_on_resistance
from repro.tech.passives import capacitor_for_mismatch, switch_width_for_settling


class TestCapacitorMatching:
    def test_sigma_decreases_with_size(self):
        s_small = capacitor_mismatch_sigma(CMOS025, 50e-15)
        s_large = capacitor_mismatch_sigma(CMOS025, 200e-15)
        assert s_large == pytest.approx(s_small / 2.0)

    def test_one_square_micron_reference(self):
        # 1 um^2 at 1 fF/um^2 is 1 fF; sigma should equal cap_matching.
        sigma = capacitor_mismatch_sigma(CMOS025, 1e-15)
        assert sigma == pytest.approx(CMOS025.cap_matching)

    def test_inverse_consistency(self):
        target = 0.002
        c = capacitor_for_mismatch(CMOS025, target)
        assert capacitor_mismatch_sigma(CMOS025, c) <= target * 1.0001

    def test_inverse_respects_min_cap(self):
        c = capacitor_for_mismatch(CMOS025, 0.5)  # absurdly loose target
        assert c >= CMOS025.cap_min

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            capacitor_mismatch_sigma(CMOS025, -1e-15)
        with pytest.raises(ValueError):
            capacitor_for_mismatch(CMOS025, 0.0)


class TestSwitches:
    def test_on_resistance_scales_inversely_with_width(self):
        r1 = switch_on_resistance(CMOS025, 1e-6)
        r2 = switch_on_resistance(CMOS025, 2e-6)
        assert r1 == pytest.approx(2 * r2)

    def test_on_resistance_magnitude(self):
        # A 10 um switch in 0.25 um should be tens to hundreds of ohms.
        r = switch_on_resistance(CMOS025, 10e-6)
        assert 10.0 < r < 1000.0

    def test_subthreshold_drive_rejected(self):
        with pytest.raises(ValueError):
            switch_on_resistance(CMOS025, 1e-6, vgs_drive=0.3)

    def test_width_for_settling_meets_time_constant(self):
        cap = 1e-12
        t_settle = 10e-9
        accuracy = 1e-4
        w = switch_width_for_settling(CMOS025, cap, t_settle, accuracy)
        r = switch_on_resistance(CMOS025, w)
        n_tau = t_settle / (r * cap)
        assert n_tau >= math.log(1 / accuracy) * 0.999

    def test_width_for_settling_respects_wmin(self):
        w = switch_width_for_settling(CMOS025, 1e-15, 1e-6, 0.5)
        assert w >= CMOS025.wmin

    def test_width_invalid_inputs(self):
        with pytest.raises(ValueError):
            switch_width_for_settling(CMOS025, 1e-12, -1e-9, 1e-4)
        with pytest.raises(ValueError):
            switch_width_for_settling(CMOS025, 1e-12, 1e-9, 1.5)
