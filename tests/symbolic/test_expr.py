"""Unit tests for the symbolic expression engine."""

import math

import pytest

from repro.errors import SymbolicError
from repro.symbolic import Const, Sym, symbols
from repro.symbolic.expr import ONE, ZERO, add, mul, power


class TestConstruction:
    def test_const_value(self):
        assert Const(3).value == 3.0
        assert Const(2.5).value == 2.5

    def test_const_rejects_non_numbers(self):
        with pytest.raises(SymbolicError):
            Const("x")
        with pytest.raises(SymbolicError):
            Const(True)

    def test_const_rejects_nan_and_inf(self):
        with pytest.raises(SymbolicError):
            Const(float("nan"))
        with pytest.raises(SymbolicError):
            Const(float("inf"))

    def test_symbol_name(self):
        assert Sym("gm").name == "gm"

    def test_symbol_rejects_empty_name(self):
        with pytest.raises(SymbolicError):
            Sym("")

    def test_symbols_helper_splits_names(self):
        gm, ro, cl = symbols("gm ro cl")
        assert (gm.name, ro.name, cl.name) == ("gm", "ro", "cl")

    def test_symbols_helper_accepts_commas(self):
        names = [s.name for s in symbols("a, b, c")]
        assert names == ["a", "b", "c"]

    def test_expressions_are_immutable(self):
        with pytest.raises(AttributeError):
            Sym("x").name = "y"
        with pytest.raises(AttributeError):
            Const(1.0).value = 2.0


class TestFolding:
    def test_constant_addition_folds(self):
        assert (Const(2) + Const(3)).constant_value() == 5.0

    def test_constant_multiplication_folds(self):
        assert (Const(2) * Const(3)).constant_value() == 6.0

    def test_add_zero_is_identity(self):
        x = Sym("x")
        assert x + 0 == x
        assert 0 + x == x

    def test_mul_one_is_identity(self):
        x = Sym("x")
        assert x * 1 == x
        assert 1 * x == x

    def test_mul_zero_annihilates(self):
        x = Sym("x")
        assert (x * 0).is_zero()
        assert (0 * x).is_zero()

    def test_like_terms_collect(self):
        x = Sym("x")
        assert x + x == 2 * x
        assert 2 * x + 3 * x == 5 * x

    def test_cancelling_terms_give_zero(self):
        x = Sym("x")
        assert (x - x).is_zero()
        assert (2 * x - x - x).is_zero()

    def test_powers_collect(self):
        x = Sym("x")
        assert x * x == x**2
        assert x**2 * x**3 == x**5

    def test_power_of_power_flattens(self):
        x = Sym("x")
        assert (x**2) ** 3 == x**6

    def test_power_distributes_over_products(self):
        x, y = symbols("x y")
        assert (x * y) ** 2 == x**2 * y**2

    def test_self_division_cancels(self):
        x = Sym("x")
        assert (x / x).is_one()

    def test_pow_zero_is_one(self):
        assert (Sym("x") ** 0).is_one()

    def test_zero_pow_zero_rejected(self):
        with pytest.raises(SymbolicError):
            power(ZERO, 0)

    def test_negative_power_of_zero_rejected(self):
        with pytest.raises(SymbolicError):
            power(ZERO, -1)

    def test_non_integer_exponent_rejected(self):
        with pytest.raises(SymbolicError):
            power(Sym("x"), 0.5)  # type: ignore[arg-type]


class TestEvaluation:
    def test_simple_polynomial(self):
        x, y = symbols("x y")
        expr = 3 * x**2 + 2 * x * y - 7
        assert expr.evaluate({"x": 2.0, "y": 1.5}) == pytest.approx(
            3 * 4 + 2 * 2 * 1.5 - 7
        )

    def test_division_evaluates(self):
        gm, ro = symbols("gm ro")
        gain = gm * ro / (1 + gm * ro)
        val = gain.evaluate({"gm": 1e-3, "ro": 1e5})
        assert val == pytest.approx(100.0 / 101.0)

    def test_missing_binding_raises(self):
        with pytest.raises(SymbolicError, match="gm"):
            Sym("gm").evaluate({})

    def test_divide_by_zero_binding_raises(self):
        x = Sym("x")
        with pytest.raises(SymbolicError):
            (1 / x).evaluate({"x": 0.0})


class TestSubstitution:
    def test_substitute_number(self):
        x, y = symbols("x y")
        expr = (x + y).substitute({"x": 2.0})
        assert expr == y + 2

    def test_substitute_expression(self):
        x, y, z = symbols("x y z")
        expr = (x * y).substitute({"x": z + 1})
        assert expr.evaluate({"y": 2.0, "z": 3.0}) == pytest.approx(8.0)

    def test_substitute_leaves_others_alone(self):
        x = Sym("x")
        assert x.substitute({"y": 5}) == x


class TestFreeSymbols:
    def test_const_has_no_symbols(self):
        assert Const(4).free_symbols() == frozenset()

    def test_nested_expression_symbols(self):
        x, y, z = symbols("x y z")
        expr = (x + y) * z**2 / (x + 1)
        assert expr.free_symbols() == {"x", "y", "z"}


class TestStr:
    def test_const_str(self):
        assert str(Const(3)) == "3"
        assert str(Const(2.5)) == "2.5"

    def test_negative_term_renders_with_minus(self):
        x, y = symbols("x y")
        s = str(x - y)
        assert " - " in s or "-" in s

    def test_str_roundtrips_through_eval_stability(self):
        # str() must be deterministic for equal expressions.
        x, y = symbols("x y")
        a = x * y + y * x
        b = 2 * (x * y)
        assert str(a) == str(b)


class TestHashEq:
    def test_structural_equality_is_order_insensitive(self):
        x, y = symbols("x y")
        assert x + y == y + x
        assert x * y == y * x

    def test_equal_expressions_share_hash(self):
        x, y = symbols("x y")
        assert hash(x + y) == hash(y + x)

    def test_usable_as_dict_keys(self):
        x = Sym("x")
        d = {x + 1: "a"}
        assert d[1 + x] == "a"
