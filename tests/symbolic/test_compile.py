"""Codegen'd numpy callables for Expr/Poly/RationalFunction."""

import numpy as np
import pytest

from repro.errors import SymbolicError
from repro.symbolic import (
    Poly,
    RationalFunction,
    compile_expr,
    compile_poly,
    compile_ratfunc,
    symbols,
)


def _symbols():
    return symbols("gm ro cl")


def _expr():
    gm, ro, cl = _symbols()
    return gm * ro / (1 + gm * ro) + (gm + cl) ** 2 - 3 / ro


def _bindings(seed=0):
    rng = np.random.default_rng(seed)
    return {
        "gm": float(rng.uniform(1e-4, 1e-2)),
        "ro": float(rng.uniform(1e4, 1e6)),
        "cl": float(rng.uniform(1e-13, 1e-11)),
    }


class TestCompiledExpr:
    def test_matches_tree_walk(self):
        compiled = compile_expr(_expr())
        for seed in range(8):
            b = _bindings(seed)
            ref = _expr().evaluate(b)
            assert compiled(b) == pytest.approx(ref, rel=1e-12)

    def test_vectorized_bindings(self):
        compiled = compile_expr(_expr())
        singles = [_bindings(s) for s in range(5)]
        stacked = {
            k: np.array([b[k] for b in singles]) for k in singles[0]
        }
        vec = compiled(stacked)
        assert vec.shape == (5,)
        for i, b in enumerate(singles):
            assert vec[i] == pytest.approx(_expr().evaluate(b), rel=1e-12)

    def test_common_subexpressions_emitted_once(self):
        gm, ro, _ = _symbols()
        shared = (gm + ro) ** 2
        compiled = compile_expr(shared + shared * gm)
        # The squared sum appears once in the generated source.
        assert compiled._fn.__source__.count("** 2") == 1

    def test_missing_binding_raises(self):
        compiled = compile_expr(_expr())
        with pytest.raises(SymbolicError):
            compiled({"gm": 1.0, "ro": 1.0})

    def test_missing_symbol_in_order_raises(self):
        with pytest.raises(SymbolicError):
            compile_expr(_expr(), symbols_order=("gm",))


class TestCompiledPolyAndRatfunc:
    def _ratfunc(self):
        gm, ro, cl = _symbols()
        return RationalFunction(
            Poly([gm * ro, ro * cl]), Poly([1.0, cl * ro, cl * cl])
        )

    def test_poly_coeffs_match(self):
        gm, ro, cl = _symbols()
        poly = Poly([gm * ro, ro + cl, 2.0])
        compiled = compile_poly(poly)
        for seed in range(5):
            b = _bindings(seed)
            assert np.allclose(
                compiled.coeffs(b), poly.evaluate_coeffs(b), rtol=1e-12
            )

    def test_frequency_response_matches(self):
        h = self._ratfunc()
        compiled = compile_ratfunc(h)
        freqs = np.logspace(2, 10, 17)
        for seed in range(4):
            b = _bindings(seed)
            assert np.allclose(
                compiled.frequency_response(freqs, b),
                h.frequency_response(freqs, b),
                rtol=1e-9,
            )

    def test_population_vectorized_response(self):
        h = self._ratfunc()
        compiled = h.compiled()
        freqs = np.logspace(3, 9, 13)
        singles = [_bindings(s) for s in range(6)]
        stacked = {k: np.array([b[k] for b in singles]) for k in singles[0]}
        responses = compiled.frequency_response(freqs, stacked)
        assert responses.shape == (6, len(freqs))
        for i, b in enumerate(singles):
            assert np.allclose(
                responses[i], h.frequency_response(freqs, b), rtol=1e-9
            )

    def test_frequency_response_dispatches_array_bindings(self):
        # The public API routes population bindings through the codegen.
        h = self._ratfunc()
        freqs = np.logspace(3, 9, 13)
        singles = [_bindings(s) for s in range(4)]
        stacked = {k: np.array([b[k] for b in singles]) for k in singles[0]}
        responses = h.frequency_response(freqs, stacked)
        assert responses.shape == (4, len(freqs))
        for i, b in enumerate(singles):
            assert np.allclose(
                responses[i], h.frequency_response(freqs, b), rtol=1e-9
            )

    def test_compiled_is_cached_on_instance(self):
        h = self._ratfunc()
        assert h.compiled() is h.compiled()

    def test_unity_gain_frequency_unchanged(self):
        # The coefficient hoisting inside unity_gain_frequency is exact:
        # same crossing, same bisection path, same value.
        gm, ro, cl = _symbols()
        h = RationalFunction(Poly([gm * ro]), Poly([1.0, ro * cl]))
        b = {"gm": 1e-2, "ro": 1e5, "cl": 1e-12}
        fu = h.unity_gain_frequency(b)
        assert fu is not None
        # |H| at the crossing is ~1 and the value is stable/deterministic.
        assert abs(abs(complex(h.frequency_response(np.array([fu]), b)[0])) - 1.0) < 1e-3
        assert fu == h.unity_gain_frequency(b)
