"""Unit tests for rational functions (transfer functions)."""

import math

import numpy as np
import pytest

from repro.errors import SymbolicError
from repro.symbolic import Poly, RationalFunction, Sym, symbols


def single_pole(gain: float, pole_hz: float) -> RationalFunction:
    """H(s) = gain / (1 + s / (2 pi pole_hz))."""
    tau = 1.0 / (2 * math.pi * pole_hz)
    return RationalFunction(Poly([gain]), Poly([1.0, tau]))


class TestConstruction:
    def test_zero_denominator_rejected(self):
        with pytest.raises(SymbolicError):
            RationalFunction(Poly([1]), Poly([0]))

    def test_default_denominator_is_one(self):
        h = RationalFunction(Poly([2]))
        assert h.dc_gain() == pytest.approx(2.0)

    def test_zero_and_one_constructors(self):
        assert RationalFunction.zero().is_zero()
        assert RationalFunction.one().dc_gain() == pytest.approx(1.0)


class TestFieldOps:
    def test_add_same_denominator_keeps_it(self):
        d = Poly([1, 1])
        h = RationalFunction(Poly([1]), d) + RationalFunction(Poly([2]), d)
        assert h.num.evaluate_coeffs({}).tolist() == [3.0]
        assert h.den == d

    def test_add_cross_multiplies(self):
        h = RationalFunction(1, Poly([1, 1])) + RationalFunction(1, Poly([2, 1]))
        # 1/(1+s) + 1/(2+s) = (3+2s)/((1+s)(2+s))
        assert h(0.0) == pytest.approx(1.5)

    def test_multiplication_cascades(self):
        h = single_pole(10.0, 1e6) * single_pole(5.0, 1e7)
        assert h.dc_gain() == pytest.approx(50.0)
        assert len(h.poles()) == 2

    def test_division(self):
        h = RationalFunction(Poly([1, 1])) / RationalFunction(Poly([2, 1]))
        assert h(0.0) == pytest.approx(0.5)

    def test_divide_by_zero_rejected(self):
        with pytest.raises(SymbolicError):
            RationalFunction.one() / RationalFunction.zero()

    def test_subtraction(self):
        h = single_pole(3.0, 1e6) - single_pole(1.0, 1e6)
        assert h.dc_gain() == pytest.approx(2.0)

    def test_negation(self):
        assert (-RationalFunction.one()).dc_gain() == pytest.approx(-1.0)


class TestNumericViews:
    def test_dc_gain(self):
        assert single_pole(42.0, 1e6).dc_gain() == pytest.approx(42.0)

    def test_dc_gain_pole_at_origin_raises(self):
        h = RationalFunction(Poly([1]), Poly([0, 1]))  # 1/s
        with pytest.raises(SymbolicError):
            h.dc_gain()

    def test_poles_and_zeros(self):
        # H = (1 + s) / (1 + s/10)(1 + s/100) with poles at -10, -100.
        h = RationalFunction(Poly([1, 1]), Poly([1, 0.1]) * Poly([1, 0.01]))
        assert sorted(h.poles().real) == pytest.approx([-100.0, -10.0])
        assert h.zeros().real == pytest.approx([-1.0])

    def test_zeros_of_zero_function_empty(self):
        assert RationalFunction.zero().zeros().size == 0

    def test_frequency_response_magnitude_single_pole(self):
        h = single_pole(1.0, 1e3)
        mag_at_pole = abs(h.frequency_response(np.array([1e3]))[0])
        assert mag_at_pole == pytest.approx(1 / math.sqrt(2), rel=1e-6)

    def test_symbolic_pole_binds_late(self):
        gm, cl = symbols("gm cl")
        h = RationalFunction(Poly([gm]), Poly([0, cl]))  # gm / (s cl): integrator
        fu = h.unity_gain_frequency({"gm": 2 * math.pi * 1e-3, "cl": 1e-12})
        assert fu == pytest.approx(1e9, rel=1e-3)

    def test_unity_gain_frequency_single_pole(self):
        # GBW of gain-A single-pole amp is ~A * fp for A >> 1.
        h = single_pole(1000.0, 1e4)
        fu = h.unity_gain_frequency()
        assert fu == pytest.approx(1e7, rel=1e-2)

    def test_unity_gain_none_when_always_below(self):
        assert single_pole(0.5, 1e6).unity_gain_frequency() is None

    def test_phase_margin_integrator_is_90(self):
        h = RationalFunction(Poly([1e9 * 2 * math.pi]), Poly([0, 1]))
        assert h.phase_margin_deg() == pytest.approx(90.0, abs=0.5)

    def test_phase_margin_two_pole(self):
        # pole1 << fu, pole2 at the nominal GBW: the true unity crossing
        # moves down to u = sqrt((sqrt(5)-1)/2) of the second pole, giving
        # PM = 90 - atan(u) = 51.83 degrees (textbook two-pole result).
        a0 = 1e5
        p1 = 10.0  # Hz
        gbw = a0 * p1  # 1 MHz
        h = (
            RationalFunction(Poly([a0]), Poly([1, 1 / (2 * math.pi * p1)]))
            * RationalFunction(Poly([1]), Poly([1, 1 / (2 * math.pi * gbw)]))
        )
        pm = h.phase_margin_deg()
        expected = 90.0 - math.degrees(math.atan(math.sqrt((math.sqrt(5) - 1) / 2)))
        assert pm == pytest.approx(expected, abs=1.0)

    def test_numeric_coeffs_normalizes_leading_den(self):
        h = RationalFunction(Poly([4]), Poly([2, 2]))
        num, den = h.numeric_coeffs()
        assert den[-1] == pytest.approx(1.0)
        assert num[0] / den[0] == pytest.approx(2.0)

    def test_call_at_pole_raises(self):
        h = RationalFunction(Poly([1]), Poly([1, 1]))  # pole at s=-1
        with pytest.raises(SymbolicError):
            h(-1.0)


class TestSubstitute:
    def test_substitute_binds_symbols(self):
        gm = Sym("gm")
        h = RationalFunction(Poly([gm]), Poly([1])).substitute({"gm": 5})
        assert h.dc_gain() == pytest.approx(5.0)

    def test_free_symbols(self):
        gm, ro = symbols("gm ro")
        h = RationalFunction(Poly([gm]), Poly([1, ro]))
        assert h.free_symbols() == {"gm", "ro"}
