"""Unit tests for polynomials in s with symbolic coefficients."""

import numpy as np
import pytest

from repro.errors import SymbolicError
from repro.symbolic import Poly, Sym, symbols


class TestConstruction:
    def test_trailing_zeros_trimmed(self):
        p = Poly([1, 2, 0, 0])
        assert p.degree == 1

    def test_zero_poly_has_degree_zero(self):
        assert Poly([0]).degree == 0
        assert Poly([0]).is_zero()

    def test_s_monomial(self):
        assert Poly.s().degree == 1
        assert Poly.s().evaluate_coeffs({}).tolist() == [0.0, 1.0]

    def test_admittance_constructor(self):
        g, c = symbols("g c")
        y = Poly.admittance(g, c)
        coeffs = y.evaluate_coeffs({"g": 1e-3, "c": 1e-12})
        assert coeffs.tolist() == [1e-3, 1e-12]

    def test_immutability(self):
        with pytest.raises(AttributeError):
            Poly([1]).coeffs = ()


class TestArithmetic:
    def test_addition_aligns_degrees(self):
        p = Poly([1, 2]) + Poly([3, 0, 5])
        assert p.evaluate_coeffs({}).tolist() == [4.0, 2.0, 5.0]

    def test_subtraction_cancels(self):
        p = Poly([1, 2, 3])
        assert (p - p).is_zero()

    def test_multiplication_convolves(self):
        # (1 + s)(1 - s) = 1 - s^2
        p = Poly([1, 1]) * Poly([1, -1])
        assert p.evaluate_coeffs({}).tolist() == [1.0, 0.0, -1.0]

    def test_scalar_multiplication(self):
        p = 2 * Poly([1, 3])
        assert p.evaluate_coeffs({}).tolist() == [2.0, 6.0]

    def test_symbolic_coefficients_multiply(self):
        g1, g2, c1, c2 = symbols("g1 g2 c1 c2")
        y1 = Poly.admittance(g1, c1)
        y2 = Poly.admittance(g2, c2)
        product = y1 * y2
        b = {"g1": 2.0, "c1": 3.0, "g2": 5.0, "c2": 7.0}
        # (2 + 3s)(5 + 7s) = 10 + 29 s + 21 s^2
        assert product.evaluate_coeffs(b).tolist() == [10.0, 29.0, 21.0]

    def test_zero_times_anything_is_zero(self):
        assert (Poly([0]) * Poly([1, 2, 3])).is_zero()

    def test_negation(self):
        p = -Poly([1, -2])
        assert p.evaluate_coeffs({}).tolist() == [-1.0, 2.0]


class TestEvaluation:
    def test_call_evaluates_at_s(self):
        p = Poly([1, 2, 1])  # (1 + s)^2
        assert p(2.0, {}) == pytest.approx(9.0)

    def test_call_with_complex_s(self):
        p = Poly([0, 1])  # s
        assert p(1j, {}) == 1j

    def test_roots_of_quadratic(self):
        # s^2 + 3s + 2 = (s+1)(s+2)
        roots = sorted(Poly([2, 3, 1]).roots({}).real)
        assert roots == pytest.approx([-2.0, -1.0])

    def test_roots_with_symbolic_coeffs(self):
        tau = Sym("tau")
        p = Poly([1, tau])  # 1 + tau*s -> root at -1/tau
        roots = p.roots({"tau": 1e-9})
        assert roots[0] == pytest.approx(-1e9)

    def test_roots_of_constant_poly_empty(self):
        assert Poly([5]).roots({}).size == 0

    def test_roots_of_zero_poly_raises(self):
        with pytest.raises(SymbolicError):
            Poly([0]).roots({})

    def test_roots_with_binding_killing_leading_term(self):
        a = Sym("a")
        p = Poly([1, 1, a])  # degree drops when a -> 0
        roots = p.roots({"a": 0.0})
        assert roots == pytest.approx(np.array([-1.0]))


class TestSubstitute:
    def test_substitute_into_coefficients(self):
        g = Sym("g")
        p = Poly([g, g * 2]).substitute({"g": 3})
        assert p.evaluate_coeffs({}).tolist() == [3.0, 6.0]

    def test_free_symbols_union(self):
        a, b = symbols("a b")
        assert Poly([a, b]).free_symbols() == {"a", "b"}
