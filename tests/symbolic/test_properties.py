"""Property-based tests: the symbolic engine must behave like a real ring.

Semantic equality is checked by evaluating both sides at random bindings,
since structural normalization is deliberately not canonical.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.symbolic import Poly, RationalFunction, Sym
from repro.symbolic.expr import Expr, add, mul

SYMBOL_NAMES = ("x", "y", "z")


@st.composite
def exprs(draw, max_depth: int = 3) -> Expr:
    """Random small expressions over the symbols x, y, z."""
    if max_depth == 0:
        kind = draw(st.sampled_from(["const", "sym"]))
    else:
        kind = draw(st.sampled_from(["const", "sym", "add", "mul", "pow"]))
    if kind == "const":
        return Expr.__new__(Expr) if False else _const(draw)
    if kind == "sym":
        return Sym(draw(st.sampled_from(SYMBOL_NAMES)))
    if kind == "add":
        return add(draw(exprs(max_depth=max_depth - 1)), draw(exprs(max_depth=max_depth - 1)))
    if kind == "mul":
        return mul(draw(exprs(max_depth=max_depth - 1)), draw(exprs(max_depth=max_depth - 1)))
    base = draw(exprs(max_depth=max_depth - 1))
    return base ** draw(st.integers(min_value=1, max_value=3))


def _const(draw):
    from repro.symbolic import Const

    return Const(draw(st.integers(min_value=-4, max_value=4)))


BINDINGS = st.fixed_dictionaries(
    {name: st.floats(min_value=-3.0, max_value=3.0, allow_nan=False) for name in SYMBOL_NAMES}
)


def _agree(a: Expr, b: Expr, bindings) -> bool:
    va = a.evaluate(bindings)
    vb = b.evaluate(bindings)
    scale = max(abs(va), abs(vb), 1.0)
    return math.isclose(va, vb, rel_tol=1e-9, abs_tol=1e-9 * scale)


@settings(max_examples=150, deadline=None)
@given(exprs(), exprs(), BINDINGS)
def test_addition_commutes(a, b, bindings):
    assert _agree(a + b, b + a, bindings)


@settings(max_examples=150, deadline=None)
@given(exprs(), exprs(), BINDINGS)
def test_multiplication_commutes(a, b, bindings):
    assert _agree(a * b, b * a, bindings)


@settings(max_examples=100, deadline=None)
@given(exprs(), exprs(), exprs(), BINDINGS)
def test_addition_associates(a, b, c, bindings):
    assert _agree((a + b) + c, a + (b + c), bindings)


@settings(max_examples=100, deadline=None)
@given(exprs(), exprs(), exprs(), BINDINGS)
def test_distributivity(a, b, c, bindings):
    assert _agree(a * (b + c), a * b + a * c, bindings)


@settings(max_examples=100, deadline=None)
@given(exprs(), BINDINGS)
def test_subtracting_self_is_zero(a, bindings):
    assert (a - a).evaluate(bindings) == 0.0


@settings(max_examples=100, deadline=None)
@given(exprs(), BINDINGS)
def test_structural_equality_implies_semantic(a, bindings):
    rebuilt = a + 0
    assert a == rebuilt
    assert _agree(a, rebuilt, bindings)


@st.composite
def polys(draw, max_degree: int = 3) -> Poly:
    n = draw(st.integers(min_value=1, max_value=max_degree + 1))
    coeffs = [draw(st.integers(min_value=-5, max_value=5)) for _ in range(n)]
    return Poly(coeffs)


@settings(max_examples=150, deadline=None)
@given(polys(), polys(), st.floats(min_value=-2, max_value=2, allow_nan=False))
def test_poly_product_evaluates_like_scalar_product(p, q, s):
    lhs = (p * q)(s, {})
    rhs = p(s, {}) * q(s, {})
    assert abs(lhs - rhs) < 1e-9 * max(abs(lhs), abs(rhs), 1.0)


@settings(max_examples=150, deadline=None)
@given(polys(), polys(), st.floats(min_value=-2, max_value=2, allow_nan=False))
def test_poly_sum_evaluates_like_scalar_sum(p, q, s):
    lhs = (p + q)(s, {})
    rhs = p(s, {}) + q(s, {})
    assert abs(lhs - rhs) < 1e-9 * max(abs(lhs), abs(rhs), 1.0)


@settings(max_examples=100, deadline=None)
@given(polys(), st.floats(min_value=-0.5, max_value=2, allow_nan=False))
def test_ratfunc_add_inverse(p, s):
    # Denominator pole sits at s = -1; keep evaluation away from it.
    h = RationalFunction(p, Poly([1, 1]))
    diff = h - h
    assert abs(diff(s)) < 1e-12


@settings(max_examples=100, deadline=None)
@given(polys(), polys(), st.floats(min_value=-0.9, max_value=0.9, allow_nan=False))
def test_ratfunc_mul_matches_pointwise(p, q, s):
    h1 = RationalFunction(p, Poly([1, 1]))
    h2 = RationalFunction(q, Poly([2, 1]))
    lhs = (h1 * h2)(s)
    rhs = h1(s) * h2(s)
    assert math.isclose(abs(lhs), abs(rhs), rel_tol=1e-9, abs_tol=1e-9)
