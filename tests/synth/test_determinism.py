"""Reproducibility: seeded synthesis must be exactly deterministic."""

from repro.enumeration.candidates import PipelineCandidate
from repro.specs import AdcSpec, plan_stages
from repro.synth import synthesize_mdac
from repro.tech import CMOS025


def _spec():
    plan = plan_stages(AdcSpec(resolution_bits=13), PipelineCandidate((4, 3, 2), 13, 7))
    return plan.mdacs[2]


def test_same_seed_same_design():
    a = synthesize_mdac(_spec(), CMOS025, budget=120, seed=17, verify_transient=False)
    b = synthesize_mdac(_spec(), CMOS025, budget=120, seed=17, verify_transient=False)
    assert a.final.sizing == b.final.sizing
    assert a.power == b.power
    assert a.history == b.history


def test_different_seed_explores_differently():
    a = synthesize_mdac(_spec(), CMOS025, budget=120, seed=17, verify_transient=False)
    b = synthesize_mdac(_spec(), CMOS025, budget=120, seed=18, verify_transient=False)
    assert a.final.sizing != b.final.sizing
