"""Synthesis-engine tests: optimizers, space, evaluator, end-to-end sizing."""

import numpy as np
import pytest

from repro.enumeration.candidates import PipelineCandidate
from repro.errors import SynthesisError
from repro.specs import AdcSpec, plan_stages
from repro.synth import (
    DesignVariable,
    HybridEvaluator,
    anneal,
    differential_evolution,
    retarget_mdac,
    synthesize_mdac,
    two_stage_space,
)
from repro.synth.patternsearch import pattern_search
from repro.tech import CMOS025


def cheap_mdac_spec():
    """The 2-bit, 8-bit-accuracy stage: fastest block to synthesize."""
    plan = plan_stages(AdcSpec(resolution_bits=13), PipelineCandidate((4, 3, 2), 13, 7))
    return plan.mdacs[2]


def sphere(x):
    return float(np.sum((x - 0.3) ** 2))


class TestOptimizers:
    def test_anneal_minimizes_sphere(self):
        run = anneal(sphere, dimension=4, budget=600, seed=2)
        assert run.best_cost < 1e-2
        assert np.allclose(run.best_x, 0.3, atol=0.1)

    def test_anneal_history_monotone(self):
        run = anneal(sphere, dimension=3, budget=200, seed=2)
        assert all(a >= b for a, b in zip(run.history, run.history[1:]))

    def test_anneal_warm_start_converges_faster(self):
        cold = anneal(sphere, dimension=5, budget=300, seed=2)
        warm = anneal(sphere, dimension=5, budget=300, seed=2, x0=np.full(5, 0.31))
        assert warm.evals_to_converge <= cold.evals_to_converge

    def test_anneal_budget_validation(self):
        with pytest.raises(SynthesisError):
            anneal(sphere, dimension=2, budget=1)

    def test_de_minimizes_sphere(self):
        run = differential_evolution(sphere, dimension=4, budget=600, seed=2)
        assert run.best_cost < 1e-2

    def test_de_budget_validation(self):
        with pytest.raises(SynthesisError):
            differential_evolution(sphere, dimension=2, budget=10, population=12)

    def test_pattern_search_polishes(self):
        x, cost, evals = pattern_search(sphere, np.full(4, 0.5), budget=200)
        assert cost < sphere(np.full(4, 0.5))
        assert evals <= 200


class TestDesignSpace:
    def test_variable_mapping_roundtrip(self):
        v = DesignVariable("w", 1e-6, 1e-4)
        for u in (0.0, 0.3, 1.0):
            assert v.to_unit(v.from_unit(u)) == pytest.approx(u, abs=1e-12)

    def test_log_scaling(self):
        v = DesignVariable("w", 1e-6, 1e-4)
        assert v.from_unit(0.5) == pytest.approx(1e-5)

    def test_bad_bounds_rejected(self):
        with pytest.raises(SynthesisError):
            DesignVariable("w", 1e-4, 1e-6)

    def test_space_decode_produces_sizing(self):
        space = two_stage_space(cheap_mdac_spec(), CMOS025)
        sizing = space.decode(np.full(space.dimension, 0.5))
        assert sizing.i_tail > 0
        assert sizing.w_input >= CMOS025.wmin

    def test_space_bounds_scale_with_spec(self):
        plan = plan_stages(
            AdcSpec(resolution_bits=13), PipelineCandidate((4, 3, 2), 13, 7)
        )
        hard = two_stage_space(plan.mdacs[0], CMOS025)  # 4-bit @ 13 bits
        easy = two_stage_space(plan.mdacs[2], CMOS025)
        i_hard = next(v for v in hard.variables if v.name == "i_tail")
        i_easy = next(v for v in easy.variables if v.name == "i_tail")
        assert i_hard.high > i_easy.high  # harder spec allows more current


class TestEvaluator:
    def test_nominal_point_evaluates(self):
        mdac = cheap_mdac_spec()
        space = two_stage_space(mdac, CMOS025)
        evaluator = HybridEvaluator(mdac, CMOS025)
        result = evaluator.evaluate(space.decode(np.full(space.dimension, 0.5)))
        assert result.dc_ok
        assert result.power > 0
        assert result.dc_gain > 100

    def test_cost_penalizes_infeasibility(self):
        mdac = cheap_mdac_spec()
        space = two_stage_space(mdac, CMOS025)
        evaluator = HybridEvaluator(mdac, CMOS025)
        # A starved design (lowest current) must cost more than a mid one
        # once penalties are applied, despite burning less power.
        starved = evaluator.evaluate(space.decode(np.zeros(space.dimension)))
        mid = evaluator.evaluate(space.decode(np.full(space.dimension, 0.5)))
        assert starved.power < mid.power
        assert starved.cost() > mid.cost() or starved.feasible

    def test_transient_counter_increments(self):
        mdac = cheap_mdac_spec()
        space = two_stage_space(mdac, CMOS025)
        evaluator = HybridEvaluator(mdac, CMOS025, transient_points=150)
        evaluator.evaluate(space.decode(np.full(space.dimension, 0.6)), run_transient=True)
        assert evaluator.transient_evals == 1
        assert evaluator.equation_evals == 1


class TestEndToEnd:
    def test_synthesize_cheap_block(self):
        result = synthesize_mdac(
            cheap_mdac_spec(), CMOS025, budget=200, seed=3, verify_transient=True
        )
        assert result.feasible, result.summary()
        assert result.final.settling_error <= result.spec.settling_error
        assert 0.05e-3 < result.power < 10e-3

    def test_unknown_optimizer_rejected(self):
        with pytest.raises(SynthesisError):
            synthesize_mdac(cheap_mdac_spec(), CMOS025, budget=50, optimizer="gradient")

    def test_retarget_reuses_previous_solution(self):
        plan = plan_stages(
            AdcSpec(resolution_bits=13), PipelineCandidate((4, 2, 2, 2), 13, 7)
        )
        cold = synthesize_mdac(plan.mdacs[3], CMOS025, budget=200, seed=3,
                               verify_transient=False)
        warm = retarget_mdac(cold, plan.mdacs[2], CMOS025, budget=40,
                             verify_transient=False)
        assert warm.retargeted
        assert warm.equation_evals < cold.equation_evals
        assert warm.final.dc_ok
