"""Corner-fused evaluation == standalone per-corner evaluation, bitwise.

The PR 6 tentpole contract: ``CornerSetEvaluator.evaluate_batch`` runs one
candidates×corners×freq tensor solve, and its per-corner results must be
*bit-identical* to each corner's own ``HybridEvaluator`` walking the same
candidate list — same metrics, same costs, same evaluation counters —
because campaign records are built from these numbers.
"""

import numpy as np
import pytest

from repro.enumeration.candidates import PipelineCandidate
from repro.errors import SynthesisError
from repro.specs import AdcSpec, plan_stages
from repro.synth import HybridEvaluator, two_stage_space
from repro.synth.batcheval import CornerBatchCostFunction
from repro.synth.evaluator import CornerSetEvaluator
from repro.tech import CMOS025
from repro.tech.process import CMOS025_SLOW

CORNERS = [CMOS025, CMOS025_SLOW]


def _mdac():
    plan = plan_stages(AdcSpec(resolution_bits=13), PipelineCandidate((4, 3, 2), 13, 7))
    return plan.mdacs[2]


def _sizings(count, seed=3):
    mdac = _mdac()
    space = two_stage_space(mdac, CMOS025)
    rng = np.random.default_rng(seed)
    return mdac, space, [space.decode(rng.random(space.dimension)) for _ in range(count)]


def _assert_results_equal(a, b):
    for field in (
        "power",
        "dc_gain",
        "loop_unity_hz",
        "phase_margin",
        "saturation_margin",
        "settling_error",
        "dc_ok",
    ):
        assert getattr(a, field) == getattr(b, field), field
    assert a.violations == b.violations
    assert a.cost() == b.cost()


class TestCornerFusedBitIdentity:
    def test_needs_at_least_one_corner(self):
        with pytest.raises(SynthesisError):
            CornerSetEvaluator(_mdac(), [])

    def test_fused_matches_standalone_per_corner_batches(self):
        mdac, _, sizings = _sizings(8)
        fused = CornerSetEvaluator(mdac, CORNERS)
        per_corner = fused.evaluate_batch(sizings)
        assert len(per_corner) == len(CORNERS)
        for tech, fused_results in zip(CORNERS, per_corner):
            solo = HybridEvaluator(mdac, tech, kernel="compiled")
            for a, b in zip(solo.evaluate_batch(sizings), fused_results):
                _assert_results_equal(a, b)

    def test_fused_matches_serial_legacy_walk(self):
        mdac, _, sizings = _sizings(5, seed=11)
        fused = CornerSetEvaluator(mdac, CORNERS)
        per_corner = fused.evaluate_batch(sizings)
        for tech, fused_results in zip(CORNERS, per_corner):
            legacy = HybridEvaluator(mdac, tech, kernel="legacy")
            for sizing, b in zip(sizings, fused_results):
                _assert_results_equal(legacy.evaluate(sizing), b)

    def test_equation_evals_sum_matches_solo_runs(self):
        mdac, _, sizings = _sizings(6)
        fused = CornerSetEvaluator(mdac, CORNERS)
        fused.evaluate_batch(sizings)
        total = 0
        for tech in CORNERS:
            solo = HybridEvaluator(mdac, tech, kernel="compiled")
            solo.evaluate_batch(sizings)
            total += solo.equation_evals
        assert fused.equation_evals == total

    def test_repeated_batches_keep_warm_chains_per_corner(self):
        # Two consecutive batches must equal one solo evaluator seeing the
        # concatenated candidate stream: the fused path may never leak one
        # corner's DC warm start into another corner's chain.
        mdac, _, sizings = _sizings(6, seed=7)
        fused = CornerSetEvaluator(mdac, CORNERS)
        first = fused.evaluate_batch(sizings[:3])
        second = fused.evaluate_batch(sizings[3:])
        for tech, head, tail in zip(
            CORNERS,
            first,
            second,
        ):
            solo = HybridEvaluator(mdac, tech, kernel="compiled")
            reference = solo.evaluate_batch(sizings)
            for a, b in zip(reference, list(head) + list(tail)):
                _assert_results_equal(a, b)

    def test_legacy_kernel_falls_back_per_corner(self):
        mdac, _, sizings = _sizings(3, seed=5)
        fused = CornerSetEvaluator(mdac, CORNERS, kernel="legacy")
        per_corner = fused.evaluate_batch(sizings)
        for tech, results in zip(CORNERS, per_corner):
            reference = HybridEvaluator(mdac, tech, kernel="legacy")
            for sizing, b in zip(sizings, results):
                _assert_results_equal(reference.evaluate(sizing), b)

    def test_single_corner_set_degenerates_to_plain_batch(self):
        mdac, _, sizings = _sizings(4, seed=2)
        fused = CornerSetEvaluator(mdac, [CMOS025])
        solo = HybridEvaluator(mdac, CMOS025, kernel="compiled")
        for a, b in zip(solo.evaluate_batch(sizings), fused.evaluate_batch(sizings)[0]):
            _assert_results_equal(a, b)


class TestCornerBatchCostFunction:
    def test_worst_corner_cost(self):
        mdac, space, _ = _sizings(0)
        rng = np.random.default_rng(1)
        proposals = [rng.random(space.dimension) for _ in range(5)]
        cost_fn = CornerBatchCostFunction(
            CornerSetEvaluator(mdac, CORNERS), space
        )
        scores = cost_fn.score_population(proposals)
        assert len(scores) == len(proposals)
        # Reference: standalone per-corner evaluators, worst corner wins.
        sizings = [space.decode(u) for u in proposals]
        reference = []
        corner_results = [
            HybridEvaluator(mdac, tech, kernel="compiled").evaluate_batch(sizings)
            for tech in CORNERS
        ]
        for i in range(len(sizings)):
            reference.append(max(col[i].cost(1e-3) for col in corner_results))
        assert scores == reference

    def test_empty_population(self):
        mdac, space, _ = _sizings(0)
        cost_fn = CornerBatchCostFunction(CornerSetEvaluator(mdac, CORNERS), space)
        assert cost_fn.score_population([]) == []

    def test_callable_matches_population_path(self):
        mdac, space, _ = _sizings(0)
        u = np.random.default_rng(4).random(space.dimension)
        single = CornerBatchCostFunction(CornerSetEvaluator(mdac, CORNERS), space)
        batch = CornerBatchCostFunction(CornerSetEvaluator(mdac, CORNERS), space)
        assert single(u) == batch.score_population([u])[0]
