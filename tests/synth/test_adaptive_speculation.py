"""The adaptive speculation-depth controller.

The controller only moves wall time — bit-identity under any depth
sequence is locked down by ``tests/synth/test_kernel_equivalence.py`` — so
these tests pin its *policy*: probe shallowly, back off when predictions
keep failing, grow with fully consumed batches, and stay deterministic.
"""

import numpy as np

from repro.enumeration.candidates import PipelineCandidate
from repro.specs import AdcSpec, plan_stages
from repro.synth import BatchCostFunction, HybridEvaluator, two_stage_space
from repro.synth.batcheval import _DEPTH_MAX, _DEPTH_MIN, _SKIP_SPAN
from repro.tech import CMOS025


def _batch_fn():
    plan = plan_stages(AdcSpec(resolution_bits=13), PipelineCandidate((4, 3, 2), 13, 7))
    mdac = plan.mdacs[2]
    space = two_stage_space(mdac, CMOS025)
    return BatchCostFunction(HybridEvaluator(mdac, CMOS025, kernel="compiled"), space)


class TestAdviseDepth:
    def test_zero_limit_passes_through(self):
        assert _batch_fn().advise_depth(0) == 0
        assert _batch_fn().advise_depth(-3) == 0

    def test_first_call_is_a_shallow_probe(self):
        fn = _batch_fn()
        assert fn.advise_depth(100) == _DEPTH_MIN

    def test_probe_respects_the_limit(self):
        fn = _batch_fn()
        assert fn.advise_depth(1) == 1

    def test_mispredictions_trigger_a_back_off_span(self):
        fn = _batch_fn()
        fn.advise_depth(100)  # consume the probe
        # Simulate repeated total mispredictions (nothing consumed).
        fn._queue = [object()] * 2  # type: ignore[list-item]
        fn._queue_head = 0
        fn.evaluator._warm_x = None
        fn.flush()
        fn._queue = [object()] * 2  # type: ignore[list-item]
        fn._queue_head = 0
        fn.flush()
        assert fn._runlen < 4.0
        # The controller now pauses speculation: the call that enters the
        # back-off returns 0, then a full skip span of zeros follows...
        zeros = [fn.advise_depth(100) for _ in range(_SKIP_SPAN + 1)]
        assert zeros == [0] * (_SKIP_SPAN + 1)
        # ...then probes again instead of staying off forever.
        assert fn.advise_depth(100) == _DEPTH_MIN

    def test_full_consumption_grows_the_depth(self):
        fn = _batch_fn()
        fn.advise_depth(100)  # probe consumed
        rng = np.random.default_rng(0)
        proposals = [rng.random(9) for _ in range(6)]
        fn.speculate(proposals)
        for u in proposals:  # consume the whole batch: prediction held
            fn(u)
        assert fn.discarded == 0
        depth = fn.advise_depth(100)
        assert depth >= len(proposals)
        assert depth <= _DEPTH_MAX

    def test_depth_never_exceeds_cap_or_limit(self):
        fn = _batch_fn()
        fn.advise_depth(100)
        fn._runlen = 1e6
        assert fn.advise_depth(1000) == _DEPTH_MAX
        assert fn.advise_depth(5) == 5

    def test_policy_is_deterministic(self):
        a, b = _batch_fn(), _batch_fn()
        for limit in (10, 3, 0, 64, 7, 100):
            assert a.advise_depth(limit) == b.advise_depth(limit)
