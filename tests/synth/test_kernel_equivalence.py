"""Kernel equivalence: compiled/batched/speculative paths == legacy, bitwise.

The PR 3 acceptance contract: the compiled kernel is the default, so every
metric, cost, optimizer trajectory and synthesis outcome it produces must
be *bit-identical* to the legacy evaluator — including through the
speculative proposal batches, which may waste work but may never change a
number or a counter.
"""

import numpy as np
import pytest

from repro.engine.persist import sizing_digest
from repro.enumeration.candidates import PipelineCandidate
from repro.errors import SynthesisError
from repro.specs import AdcSpec, plan_stages
from repro.synth import (
    BatchCostFunction,
    HybridEvaluator,
    anneal,
    differential_evolution,
    synthesize_mdac,
    two_stage_space,
)
from repro.synth.patternsearch import pattern_search
from repro.tech import CMOS025


def _mdac():
    plan = plan_stages(AdcSpec(resolution_bits=13), PipelineCandidate((4, 3, 2), 13, 7))
    return plan.mdacs[2]


def _assert_results_equal(a, b):
    for field in (
        "power",
        "dc_gain",
        "loop_unity_hz",
        "phase_margin",
        "saturation_margin",
        "settling_error",
        "dc_ok",
    ):
        assert getattr(a, field) == getattr(b, field), field
    assert a.violations == b.violations
    assert a.cost() == b.cost()


class TestEvaluatorEquivalence:
    def test_unknown_kernel_rejected(self):
        with pytest.raises(SynthesisError):
            HybridEvaluator(_mdac(), CMOS025, kernel="quantum")

    def test_compiled_matches_legacy_bitwise(self):
        mdac = _mdac()
        space = two_stage_space(mdac, CMOS025)
        rng = np.random.default_rng(3)
        sizings = [space.decode(rng.random(space.dimension)) for _ in range(12)]
        legacy = HybridEvaluator(mdac, CMOS025, kernel="legacy")
        compiled_ = HybridEvaluator(mdac, CMOS025, kernel="compiled")
        for sizing in sizings:
            _assert_results_equal(
                legacy.evaluate(sizing), compiled_.evaluate(sizing)
            )
        assert legacy.equation_evals == compiled_.equation_evals

    def test_evaluate_batch_matches_sequential(self):
        mdac = _mdac()
        space = two_stage_space(mdac, CMOS025)
        rng = np.random.default_rng(9)
        sizings = [space.decode(rng.random(space.dimension)) for _ in range(10)]
        sequential = HybridEvaluator(mdac, CMOS025, kernel="compiled")
        batched = HybridEvaluator(mdac, CMOS025, kernel="compiled")
        seq_results = [sequential.evaluate(s) for s in sizings]
        batch_results = batched.evaluate_batch(sizings)
        for a, b in zip(seq_results, batch_results):
            _assert_results_equal(a, b)
        assert sequential.equation_evals == batched.equation_evals
        # The warm trace covers every candidate (speculation relies on it).
        assert len(batched._batch_warm_trace) == len(sizings)

    def test_evaluate_batch_legacy_fallback(self):
        mdac = _mdac()
        space = two_stage_space(mdac, CMOS025)
        rng = np.random.default_rng(4)
        sizings = [space.decode(rng.random(space.dimension)) for _ in range(4)]
        legacy = HybridEvaluator(mdac, CMOS025, kernel="legacy")
        reference = HybridEvaluator(mdac, CMOS025, kernel="legacy")
        for a, b in zip(
            legacy.evaluate_batch(sizings),
            [reference.evaluate(s) for s in sizings],
        ):
            _assert_results_equal(a, b)


class TestSpeculationEquivalence:
    def _cost_pair(self):
        mdac = _mdac()
        space = two_stage_space(mdac, CMOS025)
        plain_eval = HybridEvaluator(mdac, CMOS025, kernel="compiled")

        def plain(u):
            return plain_eval.evaluate(space.decode(u)).cost()

        batch_eval = HybridEvaluator(mdac, CMOS025, kernel="compiled")
        batch = BatchCostFunction(batch_eval, space)
        return plain, plain_eval, batch, batch_eval

    def test_anneal_trajectory_identical(self):
        plain, plain_eval, batch, batch_eval = self._cost_pair()
        ref = anneal(plain, 9, budget=60, seed=2)
        spec = anneal(batch, 9, budget=60, seed=2, speculation=6)
        assert ref.history == spec.history
        assert np.array_equal(ref.best_x, spec.best_x)
        assert ref.best_cost == spec.best_cost
        # Counters rewound to the serial count, waste tracked separately.
        assert plain_eval.equation_evals == batch_eval.equation_evals
        assert batch.speculated > 0

    def test_de_trajectory_identical(self):
        plain, plain_eval, batch, batch_eval = self._cost_pair()
        ref = differential_evolution(plain, 9, budget=48, seed=2, population=8)
        spec = differential_evolution(
            batch, 9, budget=48, seed=2, population=8, speculation=8
        )
        assert ref.history == spec.history
        assert np.array_equal(ref.best_x, spec.best_x)
        assert plain_eval.equation_evals == batch_eval.equation_evals

    def test_pattern_search_identical(self):
        plain, plain_eval, batch, batch_eval = self._cost_pair()
        x0 = np.full(9, 0.5)
        ref = pattern_search(plain, x0, budget=40)
        spec = pattern_search(batch, x0, budget=40, speculation=8)
        assert np.array_equal(ref[0], spec[0])
        assert ref[1] == spec[1]
        assert ref[2] == spec[2]
        assert plain_eval.equation_evals == batch_eval.equation_evals

    def test_flush_rewinds_unconsumed_speculation(self):
        _, _, batch, batch_eval = self._cost_pair()
        rng = np.random.default_rng(0)
        proposals = [rng.random(9) for _ in range(4)]
        batch.speculate(proposals)
        assert batch.pending == 4
        first = batch(proposals[0])  # consume one
        batch.flush()
        assert batch.pending == 0
        assert batch.discarded == 3
        assert batch_eval.equation_evals == 1  # only the consumed one counts
        # Re-evaluating the same point serially reproduces the cached cost.
        fresh_eval = HybridEvaluator(_mdac(), CMOS025, kernel="compiled")
        fresh = BatchCostFunction(fresh_eval, two_stage_space(_mdac(), CMOS025))
        assert fresh(proposals[0]) == first


class TestSynthesisEquivalence:
    @pytest.mark.parametrize("optimizer", ["anneal", "de"])
    def test_synthesize_identical_across_kernels(self, optimizer):
        mdac = _mdac()
        runs = {
            label: synthesize_mdac(
                mdac,
                CMOS025,
                budget=60,
                seed=1,
                optimizer=optimizer,
                verify_transient=False,
                kernel=kernel,
                speculation=speculation,
            )
            for label, kernel, speculation in (
                ("legacy", "legacy", 0),
                ("compiled", "compiled", 0),
                ("speculative", "compiled", 6),
            )
        }
        base = runs["legacy"]
        for label in ("compiled", "speculative"):
            other = runs[label]
            assert sizing_digest(other) == sizing_digest(base), label
            assert other.history == base.history, label
            assert other.equation_evals == base.equation_evals, label
            assert other.final.cost() == base.final.cost(), label
