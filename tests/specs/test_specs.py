"""Spec translation tests: AdcSpec, noise budgeting, cap sizing, stage plans."""

import math

import pytest

from repro.constants import KT_ROOM
from repro.enumeration import enumerate_candidates
from repro.enumeration.candidates import PipelineCandidate
from repro.errors import SpecificationError
from repro.specs import (
    AdcSpec,
    allocate_noise_budget,
    plan_stages,
    size_sampling_capacitor,
)
from repro.specs.caps import NOISE_PHASE_FACTOR
from repro.tech import CMOS025


def candidate(label="4-3-2", k=13):
    return PipelineCandidate(tuple(int(x) for x in label.split("-")), k, 7)


class TestAdcSpec:
    def test_defaults_match_paper(self):
        spec = AdcSpec(resolution_bits=13)
        assert spec.sample_rate_hz == 40e6
        assert spec.tech.vdd == pytest.approx(3.3)
        assert spec.tech.lmin == pytest.approx(0.25e-6)

    def test_lsb_and_quantization_noise(self):
        spec = AdcSpec(resolution_bits=10, full_scale=2.0)
        assert spec.lsb == pytest.approx(2.0 / 1024)
        assert spec.quantization_noise_power == pytest.approx(spec.lsb**2 / 12)

    def test_settling_window(self):
        spec = AdcSpec(resolution_bits=13)
        assert spec.settling_window == pytest.approx(12.5e-9 - 1e-9)

    def test_ideal_snr(self):
        assert AdcSpec(resolution_bits=13).ideal_snr_db() == pytest.approx(80.02)

    def test_validation(self):
        with pytest.raises(SpecificationError):
            AdcSpec(resolution_bits=4)
        with pytest.raises(SpecificationError):
            AdcSpec(resolution_bits=13, sample_rate_hz=-1)
        with pytest.raises(SpecificationError):
            AdcSpec(resolution_bits=13, slew_fraction=0.95)
        with pytest.raises(SpecificationError):
            AdcSpec(resolution_bits=13, non_overlap_time=13e-9)


class TestNoiseBudget:
    def test_allocations_sum_within_budget(self):
        spec = AdcSpec(resolution_bits=13)
        budget = allocate_noise_budget(spec, candidate())
        total = sum(budget.stage_allocations) + budget.backend_allocation
        assert total <= budget.total_budget * (1 + 1e-12)

    def test_geometric_ratio(self):
        spec = AdcSpec(resolution_bits=13)
        budget = allocate_noise_budget(spec, candidate(), stage_ratio=0.5)
        a = budget.stage_allocations
        assert a[1] / a[0] == pytest.approx(0.5)
        assert a[2] / a[1] == pytest.approx(0.5)

    def test_backend_reserve(self):
        spec = AdcSpec(resolution_bits=13)
        budget = allocate_noise_budget(spec, candidate(), backend_reserve=0.4)
        assert budget.backend_allocation == pytest.approx(0.4 * spec.thermal_noise_budget)

    def test_invalid_parameters(self):
        spec = AdcSpec(resolution_bits=13)
        with pytest.raises(SpecificationError):
            allocate_noise_budget(spec, candidate(), stage_ratio=0.0)
        with pytest.raises(SpecificationError):
            allocate_noise_budget(spec, candidate(), backend_reserve=1.0)


class TestCapSizing:
    def test_noise_bound_cap_formula(self):
        sizing = size_sampling_capacitor(
            CMOS025,
            stage_bits=4,
            input_accuracy_bits=13,
            cumulative_gain=1.0,
            noise_allocation=2e-9,
            full_scale=2.0,
        )
        assert sizing.binding_constraint == "noise"
        assert sizing.total == pytest.approx(NOISE_PHASE_FACTOR * KT_ROOM / 2e-9)

    def test_floor_binds_at_low_resolution(self):
        sizing = size_sampling_capacitor(
            CMOS025,
            stage_bits=2,
            input_accuracy_bits=8,
            cumulative_gain=8.0,
            noise_allocation=1e-7,
            full_scale=2.0,
        )
        assert sizing.binding_constraint == "floor"
        assert sizing.total == pytest.approx(CMOS025.cpar_floor)

    def test_cumulative_gain_shrinks_noise_requirement(self):
        small = size_sampling_capacitor(CMOS025, 2, 10, 8.0, 1e-9, 2.0)
        large = size_sampling_capacitor(CMOS025, 2, 10, 1.0, 1e-9, 2.0)
        assert small.noise_requirement == pytest.approx(large.noise_requirement / 64)

    def test_unit_cap_times_units_is_total(self):
        sizing = size_sampling_capacitor(CMOS025, 3, 11, 1.0, 1e-8, 2.0)
        assert sizing.unit * sizing.units == pytest.approx(sizing.total)
        assert sizing.units == 4

    def test_invalid_inputs(self):
        with pytest.raises(SpecificationError):
            size_sampling_capacitor(CMOS025, 1, 13, 1.0, 1e-9, 2.0)
        with pytest.raises(SpecificationError):
            size_sampling_capacitor(CMOS025, 2, 13, 0.5, 1e-9, 2.0)
        with pytest.raises(SpecificationError):
            size_sampling_capacitor(CMOS025, 2, 13, 1.0, 0.0, 2.0)


class TestStagePlan:
    def test_plan_has_one_spec_pair_per_stage(self):
        spec = AdcSpec(resolution_bits=13)
        plan = plan_stages(spec, candidate())
        assert len(plan.mdacs) == 3
        assert len(plan.sub_adcs) == 3

    def test_stage_gains_and_accuracies(self):
        spec = AdcSpec(resolution_bits=13)
        plan = plan_stages(spec, candidate())
        assert [m.gain for m in plan.mdacs] == [8, 4, 2]
        assert [m.input_accuracy_bits for m in plan.mdacs] == [13, 10, 8]
        assert [m.output_accuracy_bits for m in plan.mdacs] == [10, 8, 7]

    def test_beta_reflects_gain(self):
        spec = AdcSpec(resolution_bits=13)
        plan = plan_stages(spec, candidate())
        m1, m2, m3 = plan.mdacs
        assert m1.beta < m2.beta < m3.beta
        # beta ~ 1 / (1.2 * G) with the input-cap estimate.
        assert m1.beta == pytest.approx(1 / (1.2 * 8), rel=1e-6)

    def test_settling_error_is_half_lsb_with_margin(self):
        spec = AdcSpec(resolution_bits=13)
        plan = plan_stages(spec, candidate())
        for mdac in plan.mdacs:
            assert mdac.settling_error == pytest.approx(
                2.0 ** -(mdac.output_accuracy_bits + 1)
            )

    def test_gm_formula_consistency(self):
        spec = AdcSpec(resolution_bits=13)
        plan = plan_stages(spec, candidate())
        for mdac in plan.mdacs:
            n_tau = math.log(1 / mdac.settling_error)
            expected = n_tau * mdac.c_eff / (mdac.beta * mdac.linear_settling_time)
            assert mdac.gm_required == pytest.approx(expected)

    def test_first_stage_cap_is_noise_bound_at_13_bits(self):
        spec = AdcSpec(resolution_bits=13)
        plan = plan_stages(spec, candidate())
        assert plan.mdacs[0].caps.binding_constraint == "noise"
        # Multiple pF at 13 bits.
        assert 1e-12 < plan.mdacs[0].caps.total < 20e-12

    def test_late_stage_caps_hit_floor_at_10_bits(self):
        spec = AdcSpec(resolution_bits=10)
        plan = plan_stages(spec, candidate("3-2", 10))
        assert plan.mdacs[-1].caps.binding_constraint == "floor"

    def test_sub_adc_comparator_counts(self):
        spec = AdcSpec(resolution_bits=13)
        plan = plan_stages(spec, candidate())
        assert [s.comparator_count for s in plan.sub_adcs] == [14, 6, 2]

    def test_sub_adc_first_stage_flag(self):
        spec = AdcSpec(resolution_bits=13)
        plan = plan_stages(spec, candidate())
        assert plan.sub_adcs[0].is_first_stage
        assert not any(s.is_first_stage for s in plan.sub_adcs[1:])

    def test_offset_tolerance_shrinks_with_stage_bits(self):
        spec = AdcSpec(resolution_bits=13)
        plan = plan_stages(spec, candidate())
        tols = [s.offset_tolerance for s in plan.sub_adcs]
        assert tols[0] < tols[1] < tols[2]
        assert tols[0] == pytest.approx(2.0 / 2**5)

    def test_reuse_keys(self):
        spec = AdcSpec(resolution_bits=13)
        plan = plan_stages(spec, candidate())
        assert plan.unique_mdac_keys == ((4, 13), (3, 10), (2, 8))

    def test_unique_blocks_across_all_13bit_candidates(self):
        # The paper synthesized "eleven MDACs" to cover all seven candidates;
        # our exact bookkeeping yields 12 distinct (m, accuracy) pairs.
        spec = AdcSpec(resolution_bits=13)
        keys = set()
        for cand in enumerate_candidates(13):
            keys.update(plan_stages(spec, cand).unique_mdac_keys)
        assert len(keys) == 12

    def test_dc_gain_requirement_grows_with_accuracy(self):
        spec = AdcSpec(resolution_bits=13)
        plan = plan_stages(spec, candidate())
        gains = [m.dc_gain_min for m in plan.mdacs]
        assert gains[0] > gains[1] > gains[2]

    def test_budget_mismatch_rejected(self):
        spec = AdcSpec(resolution_bits=13)
        wrong = allocate_noise_budget(spec, candidate("4-4", 13))
        with pytest.raises(SpecificationError):
            plan_stages(spec, candidate(), budget=wrong)
