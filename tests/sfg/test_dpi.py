"""DPI signal-flow graphs cross-validated against direct MNA AC analysis.

The decisive test: for real transistor circuits, the symbolic transfer
function from DPI + Mason, bound with small-signal values from the DC
solution, must match the numeric MNA frequency response to high precision —
they are two routes to the same linearized circuit.
"""

import math

import numpy as np
import pytest

from repro.analysis import ac_transfer, linearize, solve_dc
from repro.circuit.builder import CircuitBuilder
from repro.errors import SfgError
from repro.sfg import build_sfg, mason_gain, small_signal_bindings
from repro.tech import CMOS025


def cross_validate(ckt, output_net, frequencies, rel=1e-6):
    """Assert DPI+Mason == MNA AC for the circuit's configured input."""
    op = solve_dc(ckt)
    graph, src = build_sfg(ckt)
    h_sym = mason_gain(graph, src, output_net)
    bindings = small_signal_bindings(ckt, op)
    lin = linearize(ckt, op)
    h_mna = ac_transfer(lin, output_net, np.array(frequencies))
    for f, expected in zip(frequencies, h_mna):
        got = h_sym(2j * math.pi * f, bindings)
        assert got == pytest.approx(expected, rel=rel), f"mismatch at {f} Hz"


class TestPassiveDpi:
    def test_resistive_divider(self):
        b = CircuitBuilder("div")
        b.v("in", "gnd", ac=1.0)
        b.r("in", "out", 1e3)
        b.r("out", "gnd", 3e3)
        ckt = b.build()
        graph, src = build_sfg(ckt)
        h = mason_gain(graph, src, "out")
        bindings = small_signal_bindings(ckt, solve_dc(ckt))
        assert h(0.0, bindings) == pytest.approx(0.75, rel=1e-12)

    def test_rc_lowpass_pole(self):
        b = CircuitBuilder("rc")
        b.v("in", "gnd", ac=1.0)
        b.r("in", "out", 1e3)
        b.c("out", "gnd", 1e-9)
        ckt = b.build()
        graph, src = build_sfg(ckt)
        h = mason_gain(graph, src, "out")
        bindings = small_signal_bindings(ckt, solve_dc(ckt))
        p = h.poles(bindings)
        assert p[0].real == pytest.approx(-1e6, rel=1e-9)

    def test_two_node_ladder_matches_mna(self):
        b = CircuitBuilder("ladder")
        b.v("in", "gnd", ac=1.0)
        b.r("in", "a", 1e3)
        b.c("a", "gnd", 1e-9)
        b.r("a", "out", 2e3)
        b.c("out", "gnd", 0.5e-9)
        cross_validate(b.build(), "out", [1e3, 1e5, 1e6, 1e7])

    def test_bridged_t_matches_mna(self):
        # The bridging cap creates a multi-loop SFG: good Mason stress test.
        b = CircuitBuilder("bridged_t")
        b.v("in", "gnd", ac=1.0)
        b.r("in", "a", 1e3)
        b.r("a", "out", 1e3)
        b.c("a", "gnd", 1e-9)
        b.c("in", "out", 0.2e-9)
        cross_validate(b.build(), "out", [1e4, 1e6, 1e8])

    def test_current_source_input(self):
        b = CircuitBuilder("tia")
        b.i("gnd", "n1", ac=1.0)
        b.r("n1", "gnd", 5e3)
        b.c("n1", "gnd", 1e-12)
        ckt = b.build()
        graph, src = build_sfg(ckt)
        h = mason_gain(graph, src, "n1")
        bindings = small_signal_bindings(ckt, solve_dc(ckt))
        # Transimpedance at DC is the resistor value; current flows into n1.
        assert h(0.0, bindings) == pytest.approx(5e3, rel=1e-9)


class TestActiveDpi:
    def test_common_source_matches_mna(self):
        b = CircuitBuilder("cs", tech=CMOS025)
        b.v("vdd", "gnd", dc=3.3)
        b.v("in", "gnd", dc=0.9, ac=1.0)
        b.nmos("out", "in", "gnd", w=20e-6, l=0.5e-6)
        b.r("vdd", "out", 20e3)
        b.c("out", "gnd", 1e-12)
        cross_validate(b.build(), "out", [1e3, 1e6, 1e8, 1e9])

    def test_common_source_dc_gain_formula(self):
        b = CircuitBuilder("cs", tech=CMOS025)
        b.v("vdd", "gnd", dc=3.3)
        b.v("in", "gnd", dc=0.9, ac=1.0)
        b.nmos("out", "in", "gnd", w=20e-6, l=0.5e-6)
        b.r("vdd", "out", 20e3)
        ckt = b.build()
        op = solve_dc(ckt)
        graph, src = build_sfg(ckt)
        h = mason_gain(graph, src, "out")
        bindings = small_signal_bindings(ckt, op)
        m = op.device_ops["m1"]
        expected = -m.gm / (m.gds + 1.0 / 20e3)
        assert h(0.0, bindings) == pytest.approx(expected, rel=1e-9)

    def test_two_stage_miller_matches_mna(self):
        # VCCS-based two-stage with Miller compensation: pole splitting and
        # the famous RHP zero at gm2/Cc.
        gm1, gm2 = 1e-3, 4e-3
        r1, r2 = 200e3, 100e3
        c1, c2, cc = 0.1e-12, 2e-12, 0.5e-12
        b = CircuitBuilder("miller")
        b.v("in", "gnd", ac=1.0)
        b.r("in", "gnd", 1e6)
        b.vccs("gnd", "x", "in", "gnd", gm=gm1)
        b.r("x", "gnd", r1)
        b.c("x", "gnd", c1)
        b.vccs("gnd", "out", "x", "gnd", gm=-gm2)
        b.r("out", "gnd", r2)
        b.c("out", "gnd", c2)
        b.c("x", "out", cc)
        ckt = b.build()
        cross_validate(ckt, "out", [1e2, 1e5, 1e7, 1e9])
        # Check the RHP zero analytically.
        graph, src = build_sfg(ckt)
        h = mason_gain(graph, src, "out")
        bindings = small_signal_bindings(ckt, solve_dc(ckt))
        z = h.zeros(bindings)
        rhp = [zz for zz in z if zz.real > 0]
        assert len(rhp) == 1
        assert rhp[0].real == pytest.approx(gm2 / cc, rel=1e-6)

    def test_source_follower_matches_mna(self):
        b = CircuitBuilder("sf", tech=CMOS025)
        b.v("vdd", "gnd", dc=3.3)
        b.v("in", "gnd", dc=2.0, ac=1.0)
        b.nmos("vdd", "in", "out", w=50e-6, l=0.25e-6)
        b.i("out", "gnd", dc=200e-6)
        b.c("out", "gnd", 1e-12)
        cross_validate(b.build(), "out", [1e3, 1e7, 1e9])

    def test_cascode_matches_mna(self):
        b = CircuitBuilder("cascode", tech=CMOS025)
        b.v("vdd", "gnd", dc=3.3)
        b.v("vbias", "gnd", dc=1.8)
        b.v("in", "gnd", dc=0.9, ac=1.0)
        b.nmos("mid", "in", "gnd", w=20e-6, l=0.5e-6, name="m1")
        b.nmos("out", "vbias", "mid", w=20e-6, l=0.5e-6, name="m2")
        b.r("vdd", "out", 50e3)
        b.c("out", "gnd", 0.5e-12)
        cross_validate(b.build(), "out", [1e3, 1e6, 1e8], rel=1e-5)


class TestDpiErrors:
    def test_no_ac_input_rejected(self):
        b = CircuitBuilder("noin")
        b.v("in", "gnd", dc=1.0)
        b.r("in", "out", 1e3)
        b.r("out", "gnd", 1e3)
        with pytest.raises(SfgError, match="no AC input"):
            build_sfg(b.build())

    def test_two_ac_inputs_rejected(self):
        b = CircuitBuilder("two")
        b.v("a", "gnd", ac=1.0)
        b.v("b", "gnd", ac=1.0)
        b.r("a", "out", 1e3)
        b.r("b", "out", 1e3)
        b.r("out", "gnd", 1e3)
        with pytest.raises(SfgError, match="exactly one"):
            build_sfg(b.build())

    def test_non_ground_referenced_source_rejected(self):
        b = CircuitBuilder("float")
        b.v("a", "b", ac=1.0)
        b.r("a", "gnd", 1e3)
        b.r("b", "gnd", 1e3)
        with pytest.raises(SfgError, match="ground-referenced"):
            build_sfg(b.build())

    def test_inductor_rejected(self):
        b = CircuitBuilder("ind")
        b.v("in", "gnd", ac=1.0)
        b.l("in", "out", 1e-9)
        b.r("out", "gnd", 1e3)
        with pytest.raises(SfgError, match="not"):
            build_sfg(b.build())
