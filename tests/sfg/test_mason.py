"""Mason's gain formula on hand-built canonical graphs."""

import pytest

from repro.errors import SfgError
from repro.sfg import SignalFlowGraph, mason_gain
from repro.symbolic import symbols


def evaluate(h, bindings=None, s=0.0):
    return h(s, bindings or {})


class TestBasicGraphs:
    def test_single_branch(self):
        g = SignalFlowGraph()
        g.add_branch("in", "out", 3.0)
        h = mason_gain(g, "in", "out")
        assert evaluate(h) == pytest.approx(3.0)

    def test_cascade_multiplies(self):
        g = SignalFlowGraph()
        g.add_branch("in", "x", 2.0)
        g.add_branch("x", "out", 5.0)
        h = mason_gain(g, "in", "out")
        assert evaluate(h) == pytest.approx(10.0)

    def test_parallel_branches_add(self):
        g = SignalFlowGraph()
        g.add_branch("in", "out", 2.0)
        g.add_branch("in", "out", 3.0)
        h = mason_gain(g, "in", "out")
        assert evaluate(h) == pytest.approx(5.0)

    def test_no_path_gives_zero(self):
        g = SignalFlowGraph()
        g.add_node("in")
        g.add_branch("a", "out", 1.0)
        assert mason_gain(g, "in", "out").is_zero()

    def test_source_equals_sink(self):
        g = SignalFlowGraph()
        g.add_branch("in", "out", 1.0)
        h = mason_gain(g, "in", "in")
        assert evaluate(h) == pytest.approx(1.0)

    def test_unknown_node_raises(self):
        g = SignalFlowGraph()
        g.add_branch("in", "out", 1.0)
        with pytest.raises(SfgError):
            mason_gain(g, "nope", "out")

    def test_self_loop_branch_rejected(self):
        g = SignalFlowGraph()
        with pytest.raises(SfgError):
            g.add_branch("x", "x", 1.0)


class TestFeedback:
    def test_classic_feedback_loop(self):
        # in -> x (A), x -> out (1), out -> x (-B): H = A / (1 + A... ) no:
        # loop gain = -B via x->out->x: H = A/(1 + B).
        g = SignalFlowGraph()
        g.add_branch("in", "x", 4.0)
        g.add_branch("x", "out", 1.0)
        g.add_branch("out", "x", -1.0)
        h = mason_gain(g, "in", "out")
        assert evaluate(h) == pytest.approx(4.0 / (1.0 + 1.0))

    def test_symbolic_feedback(self):
        a, f = symbols("a f")
        g = SignalFlowGraph()
        g.add_branch("in", "s", 1.0)
        g.add_branch("s", "out", a)
        g.add_branch("out", "s", -f)
        h = mason_gain(g, "in", "out")
        val = evaluate(h, {"a": 1000.0, "f": 0.1})
        assert val == pytest.approx(1000.0 / (1.0 + 100.0), rel=1e-12)

    def test_two_forward_paths_with_loop(self):
        # P1 = A*B*C through the loop region, P2 = E*C, loop L = -B*D.
        a, bsym, c, d, e = 2.0, 3.0, 5.0, 0.5, 7.0
        g = SignalFlowGraph()
        g.add_branch("in", "x1", a)
        g.add_branch("x1", "x2", bsym)
        g.add_branch("x2", "out", c)
        g.add_branch("x2", "x1", -d)
        g.add_branch("in", "x2", e)
        h = mason_gain(g, "in", "out")
        # Both paths touch the loop: H = (ABC + EC) / (1 + BD).
        expected = (a * bsym * c + e * c) / (1 + bsym * d)
        assert evaluate(h) == pytest.approx(expected, rel=1e-12)

    def test_non_touching_loop_determinant(self):
        # Path in->p->out with loop at p (L1) and a detached loop q<->r (L2).
        # H = P / (1 - L1) after the (1 - L2) factors cancel.
        p_gain, l1a, l1b, l2a, l2b = 5.0, 2.0, 0.25, 3.0, 0.1
        g = SignalFlowGraph()
        g.add_branch("in", "p", p_gain)
        g.add_branch("p", "out", 1.0)
        g.add_branch("p", "a", l1a)
        g.add_branch("a", "p", l1b)
        g.add_branch("q", "r", l2a)
        g.add_branch("r", "q", l2b)
        h = mason_gain(g, "in", "out")
        expected = p_gain / (1 - l1a * l1b)
        assert evaluate(h) == pytest.approx(expected, rel=1e-12)

    def test_two_touching_loops(self):
        # Loops sharing node x are touching: no L1*L2 term.
        g = SignalFlowGraph()
        g.add_branch("in", "x", 1.0)
        g.add_branch("x", "out", 1.0)
        g.add_branch("x", "a", 2.0)
        g.add_branch("a", "x", 0.1)  # L1 = 0.2
        g.add_branch("x", "b", 3.0)
        g.add_branch("b", "x", 0.1)  # L2 = 0.3
        h = mason_gain(g, "in", "out")
        assert evaluate(h) == pytest.approx(1.0 / (1 - 0.2 - 0.3), rel=1e-12)


class TestGraphContainer:
    def test_weight_lookup(self):
        g = SignalFlowGraph()
        g.add_branch("a", "b", 2.0)
        assert evaluate(g.weight("a", "b")) == pytest.approx(2.0)
        with pytest.raises(SfgError):
            g.weight("b", "a")

    def test_loops_enumeration(self):
        g = SignalFlowGraph()
        g.add_branch("a", "b", 1.0)
        g.add_branch("b", "a", 1.0)
        assert len(g.loops()) == 1

    def test_forward_paths(self):
        g = SignalFlowGraph()
        g.add_branch("in", "a", 1.0)
        g.add_branch("a", "out", 1.0)
        g.add_branch("in", "out", 1.0)
        assert len(g.forward_paths("in", "out")) == 2
