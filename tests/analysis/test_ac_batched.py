"""Batched AC solves: one stacked solve, bit-identical to the legacy loop."""

import numpy as np
import pytest

from repro.analysis.ac import ac_response, ac_system_stack, solve_ac_stack
from repro.analysis.dc import solve_dc
from repro.analysis.smallsignal import LinearizedCircuit, linearize
from repro.analysis.mna import layout_for
from repro.circuit.builder import CircuitBuilder
from repro.errors import AnalysisError
from repro.tech import CMOS025


def _rc_circuit():
    b = CircuitBuilder("rc", tech=CMOS025)
    b.v("in", "gnd", dc=0.0, ac=1.0, name="vin")
    b.r("in", "out", 1e3, name="r1")
    b.c("out", "gnd", 1e-9, name="c1")
    return b.circuit


def _linear():
    circuit = _rc_circuit()
    return linearize(circuit, solve_dc(circuit))


class TestBatchedAc:
    def test_batched_equals_loop_bitwise(self):
        lin = _linear()
        freqs = np.logspace(2, 9, 181)
        loop = ac_response(lin, freqs, batched=False)
        batched = ac_response(lin, freqs, batched=True)
        assert np.array_equal(loop, batched)

    def test_system_stack_matches_system_at(self):
        lin = _linear()
        freqs = np.array([1e3, 1e6, 1e9])
        stack = ac_system_stack(lin, freqs)
        for k, f in enumerate(freqs):
            assert np.array_equal(stack[k], lin.system_at(2j * np.pi * f))

    def test_system_stack_out_buffer(self):
        lin = _linear()
        freqs = np.logspace(3, 6, 11)
        buf = np.empty((len(freqs), lin.size, lin.size), dtype=complex)
        returned = ac_system_stack(lin, freqs, out=buf)
        assert returned is buf
        assert np.array_equal(buf, ac_system_stack(lin, freqs))

    def test_empty_sweep(self):
        lin = _linear()
        out = ac_response(lin, np.array([]), batched=True)
        assert out.shape == (0, lin.size)

    def test_singular_system_names_first_bad_frequency(self):
        # A row of zeros makes every frequency singular; the error must
        # name the first one in sweep order, exactly like the legacy loop.
        lin = _linear()
        g = lin.g_matrix.copy()
        c = lin.c_matrix.copy()
        g[0, :] = 0.0
        c[0, :] = 0.0
        broken = LinearizedCircuit(
            layout=lin.layout,
            g_matrix=g,
            c_matrix=c,
            b_ac=lin.b_ac,
            op=lin.op,
            noise_sources=[],
        )
        freqs = np.array([7.5e3, 1e6])
        with pytest.raises(AnalysisError) as batched_err:
            ac_response(broken, freqs, batched=True)
        with pytest.raises(AnalysisError) as loop_err:
            ac_response(broken, freqs, batched=False)
        assert "7.500e+03" in str(batched_err.value)
        assert str(batched_err.value) == str(loop_err.value)

    def test_solve_ac_stack_partial_batch(self):
        lin = _linear()
        freqs = np.logspace(3, 6, 9)
        stack = ac_system_stack(lin, freqs)
        solutions = solve_ac_stack(stack, lin.b_ac, freqs)
        reference = ac_response(lin, freqs, batched=False)
        assert np.array_equal(solutions, reference)
