"""Persisted compiled stamp templates: pickling, the on-disk store, stats.

PR 6 contract: templates are pure data (picklable), a ``TemplateStore``
round-trips them bit-identically, corruption degrades to a recompile
(never an error), and a warm store drops the fresh-compile count to zero —
the property the benchmark's cache stage measures.
"""

import pickle

import numpy as np
import pytest

from repro.analysis.dc import solve_dc
from repro.analysis.mna import layout_for
from repro.analysis.template import (
    TEMPLATE_STATS,
    MnaTemplate,
    TemplateStore,
    _TEMPLATE_CACHE,
    reset_template_stats,
    template_for,
)
from repro.enumeration.candidates import PipelineCandidate
from repro.specs import AdcSpec, plan_stages
from repro.synth import HybridEvaluator, two_stage_space
from repro.tech import CMOS025


def _opamp_bench(seed: int = 0):
    plan = plan_stages(AdcSpec(resolution_bits=13), PipelineCandidate((4, 3, 2), 13, 7))
    mdac = plan.mdacs[2]
    space = two_stage_space(mdac, CMOS025)
    evaluator = HybridEvaluator(mdac, CMOS025)
    rng = np.random.default_rng(seed)
    sizing = space.decode(rng.random(space.dimension))
    return evaluator._ac_bench(sizing), mdac, space


@pytest.fixture(autouse=True)
def _fresh_template_state():
    """Each test sees an empty in-process cache and zeroed counters."""
    saved = dict(_TEMPLATE_CACHE)
    _TEMPLATE_CACHE.clear()
    reset_template_stats()
    yield
    _TEMPLATE_CACHE.clear()
    _TEMPLATE_CACHE.update(saved)
    reset_template_stats()


class TestTemplatePickling:
    def test_pickle_round_trip_is_bit_identical(self):
        bench, _, _ = _opamp_bench(1)
        template = MnaTemplate(bench)
        clone = pickle.loads(pickle.dumps(template))
        assert clone.key == template.key
        x = np.random.default_rng(0).standard_normal(layout_for(bench).size)
        jac_a, res_a = template.bind(bench).assemble(x, 1e-9, 0.5)
        jac_b, res_b = clone.bind(bench).assemble(x, 1e-9, 0.5)
        assert np.array_equal(jac_a, jac_b)
        assert np.array_equal(res_a, res_b)


class TestTemplateStore:
    def test_round_trip_and_linearize_identity(self, tmp_path):
        bench, _, _ = _opamp_bench(2)
        store = TemplateStore(tmp_path)
        template = MnaTemplate(bench)
        store.save(template)
        loaded = store.load(bench.topology_key())
        assert loaded is not None
        op = solve_dc(bench)
        ref = template.bind(bench).linearize(op)
        via_store = loaded.bind(bench).linearize(op)
        assert np.array_equal(ref.g_matrix, via_store.g_matrix)
        assert np.array_equal(ref.c_matrix, via_store.c_matrix)
        assert np.array_equal(ref.b_ac, via_store.b_ac)

    def test_missing_entry_is_a_miss(self, tmp_path):
        bench, _, _ = _opamp_bench(1)
        assert TemplateStore(tmp_path).load(bench.topology_key()) is None

    def test_corrupt_entry_degrades_to_miss_and_unlinks(self, tmp_path):
        bench, _, _ = _opamp_bench(1)
        store = TemplateStore(tmp_path)
        store.save(MnaTemplate(bench))
        path = store._path(bench.topology_key())
        path.write_bytes(b"not a pickle")
        assert store.load(bench.topology_key()) is None
        assert not path.exists()

    def test_wrong_key_entry_is_rejected(self, tmp_path):
        bench_a, _, _ = _opamp_bench(1)
        store = TemplateStore(tmp_path)
        template = MnaTemplate(bench_a)
        # Write the right pickle under the wrong address.
        other_key = ("bogus",)
        store._path(other_key).parent.mkdir(parents=True, exist_ok=True)
        store._path(other_key).write_bytes(pickle.dumps(template))
        assert store.load(other_key) is None


class TestTemplateStats:
    def test_cold_lookup_compiles_and_persists(self, tmp_path):
        bench, _, _ = _opamp_bench(1)
        store = TemplateStore(tmp_path)
        template_for(bench, store=store)
        assert TEMPLATE_STATS["compiled"] == 1
        assert TEMPLATE_STATS["store_misses"] == 1
        assert TEMPLATE_STATS["store_hits"] == 0
        assert store.load(bench.topology_key()) is not None

    def test_warm_store_compiles_nothing(self, tmp_path):
        bench, _, _ = _opamp_bench(1)
        store = TemplateStore(tmp_path)
        template_for(bench, store=store)  # cold: compiles + persists
        _TEMPLATE_CACHE.clear()  # simulate a fresh worker process
        reset_template_stats()
        template_for(bench, store=store)
        assert TEMPLATE_STATS["compiled"] == 0
        assert TEMPLATE_STATS["store_hits"] == 1

    def test_in_process_cache_short_circuits_the_store(self, tmp_path):
        bench, _, _ = _opamp_bench(1)
        store = TemplateStore(tmp_path)
        template_for(bench, store=store)
        reset_template_stats()
        template_for(bench, store=store)  # in-process hit: store untouched
        assert TEMPLATE_STATS == {
            "compiled": 0,
            "store_hits": 0,
            "store_misses": 0,
        }


class TestEvaluatorIntegration:
    def test_evaluator_accepts_store_path_and_stays_bit_identical(self, tmp_path):
        bench, mdac, space = _opamp_bench(3)
        rng = np.random.default_rng(5)
        sizings = [space.decode(rng.random(space.dimension)) for _ in range(3)]
        plain = HybridEvaluator(mdac, CMOS025, kernel="compiled")
        references = [plain.evaluate(s) for s in sizings]

        _TEMPLATE_CACHE.clear()
        reset_template_stats()
        stored = HybridEvaluator(
            mdac, CMOS025, kernel="compiled", template_store=str(tmp_path)
        )
        assert isinstance(stored.template_store, TemplateStore)
        for ref, sizing in zip(references, sizings):
            result = stored.evaluate(sizing)
            assert result.cost() == ref.cost()
            assert result.power == ref.power
            assert result.dc_gain == ref.dc_gain
        assert TEMPLATE_STATS["compiled"] >= 1  # cold run pays the compiles

        _TEMPLATE_CACHE.clear()
        reset_template_stats()
        warm = HybridEvaluator(
            mdac, CMOS025, kernel="compiled", template_store=str(tmp_path)
        )
        for ref, sizing in zip(references, sizings):
            assert warm.evaluate(sizing).cost() == ref.cost()
        assert TEMPLATE_STATS["compiled"] == 0  # warm rerun: zero recompiles
        assert TEMPLATE_STATS["store_hits"] >= 1
