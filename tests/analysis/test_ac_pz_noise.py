"""AC, pole/zero and noise analyses validated against closed forms."""

import math

import numpy as np
import pytest

from repro.analysis import (
    ac_transfer,
    integrated_output_noise,
    linearize,
    poles,
    solve_dc,
    zeros,
)
from repro.analysis.ac import dc_gain, phase_margin_deg, unity_gain_frequency
from repro.analysis.pz import dominant_pole_hz
from repro.circuit.builder import CircuitBuilder
from repro.constants import KT_ROOM
from repro.tech import CMOS025


def rc_lowpass(r=1e3, c=1e-9):
    b = CircuitBuilder("rc")
    b.v("in", "gnd", dc=0.0, ac=1.0)
    b.r("in", "out", r)
    b.c("out", "gnd", c)
    return b.build()


class TestAc:
    def test_rc_lowpass_pole_magnitude(self):
        r, c = 1e3, 1e-9
        lin = linearize(rc_lowpass(r, c))
        fp = 1.0 / (2 * math.pi * r * c)
        h = ac_transfer(lin, "out", np.array([fp]))
        assert abs(h[0]) == pytest.approx(1 / math.sqrt(2), rel=1e-6)
        assert math.degrees(math.atan2(h[0].imag, h[0].real)) == pytest.approx(
            -45.0, abs=0.01
        )

    def test_rc_lowpass_dc_gain_unity(self):
        lin = linearize(rc_lowpass())
        assert dc_gain(lin, "out") == pytest.approx(1.0, rel=1e-9)

    def test_rc_highpass(self):
        b = CircuitBuilder("hp")
        b.v("in", "gnd", ac=1.0)
        b.c("in", "out", 1e-9)
        b.r("out", "gnd", 1e3)
        lin = linearize(b.build())
        fp = 1.0 / (2 * math.pi * 1e3 * 1e-9)
        h_low = ac_transfer(lin, "out", np.array([fp / 100]))
        h_high = ac_transfer(lin, "out", np.array([fp * 100]))
        assert abs(h_low[0]) < 0.02
        assert abs(h_high[0]) == pytest.approx(1.0, rel=1e-3)

    def test_common_source_gain_matches_gm_ro(self):
        b = CircuitBuilder("cs", tech=CMOS025)
        b.v("vdd", "gnd", dc=3.3)
        b.v("bias", "gnd", dc=0.9, ac=1.0)
        b.nmos("out", "bias", "gnd", w=20e-6, l=0.5e-6)
        b.r("vdd", "out", 20e3)
        ckt = b.build()
        op = solve_dc(ckt)
        m = op.device_ops["m1"]
        lin = linearize(ckt, op)
        gain = dc_gain(lin, "out")
        expected = -m.gm * (1.0 / (m.gds + 1.0 / 20e3))
        assert gain == pytest.approx(expected, rel=1e-6)

    def test_unity_gain_frequency_of_integrator_stage(self):
        # gm stage into a cap: fu = gm/(2 pi C).
        b = CircuitBuilder("gmC")
        b.v("in", "gnd", ac=1.0)
        b.r("in", "gnd", 1e6)
        b.vccs("gnd", "out", "in", "gnd", gm=1e-3)
        b.r("out", "gnd", 1e9)  # large finite DC gain
        b.c("out", "gnd", 1e-12)
        lin = linearize(b.build())
        fu = unity_gain_frequency(lin, "out")
        assert fu == pytest.approx(1e-3 / (2 * math.pi * 1e-12), rel=1e-3)

    def test_phase_margin_of_single_pole_stage_near_90(self):
        b = CircuitBuilder("gmC")
        b.v("in", "gnd", ac=1.0)
        b.r("in", "gnd", 1e6)
        b.vccs("gnd", "out", "in", "gnd", gm=1e-3)
        b.r("out", "gnd", 1e9)
        b.c("out", "gnd", 1e-12)
        lin = linearize(b.build())
        pm = phase_margin_deg(lin, "out")
        assert pm == pytest.approx(90.0, abs=1.0)

    def test_differential_output(self):
        b = CircuitBuilder("diff")
        b.v("in", "gnd", ac=1.0)
        b.r("in", "p", 1e3)
        b.r("p", "gnd", 1e3)
        b.r("in", "n", 2e3)
        b.r("n", "gnd", 2e3)
        lin = linearize(b.build())
        h = ac_transfer(lin, "p", np.array([1.0]), negative_net="n")
        assert abs(h[0]) == pytest.approx(0.0, abs=1e-12)


class TestPz:
    def test_rc_pole_location(self):
        r, c = 1e3, 1e-9
        lin = linearize(rc_lowpass(r, c))
        p = poles(lin)
        assert len(p) == 1
        assert p[0].real == pytest.approx(-1.0 / (r * c), rel=1e-9)

    def test_dominant_pole_hz(self):
        r, c = 1e3, 1e-9
        lin = linearize(rc_lowpass(r, c))
        assert dominant_pole_hz(lin) == pytest.approx(
            1.0 / (2 * math.pi * r * c), rel=1e-9
        )

    def test_rlc_resonance(self):
        b = CircuitBuilder("rlc")
        b.v("in", "gnd", ac=1.0)
        b.r("in", "mid", 10.0)
        b.l("mid", "out", 1e-6)
        b.c("out", "gnd", 1e-9)
        lin = linearize(b.build())
        p = poles(lin)
        w0 = 1.0 / math.sqrt(1e-6 * 1e-9)
        assert len(p) == 2
        assert np.abs(p[0]) == pytest.approx(w0, rel=1e-6)

    def test_lead_network_zero(self):
        # R1 parallel C feeding R2: zero at 1/(R1 C).
        r1, r2, c = 10e3, 1e3, 1e-9
        b = CircuitBuilder("lead")
        b.v("in", "gnd", ac=1.0)
        b.r("in", "out", r1)
        b.c("in", "out", c)
        b.r("out", "gnd", r2)
        lin = linearize(b.build())
        z = zeros(lin, "out")
        assert len(z) == 1
        assert z[0].real == pytest.approx(-1.0 / (r1 * c), rel=1e-6)

    def test_zeros_requires_excitation(self):
        b = CircuitBuilder("noac")
        b.v("in", "gnd", dc=1.0)
        b.r("in", "out", 1e3)
        b.r("out", "gnd", 1e3)
        lin = linearize(b.build())
        from repro.errors import AnalysisError

        with pytest.raises(AnalysisError, match="AC excitation"):
            zeros(lin, "out")


class TestNoise:
    def test_rc_integrated_noise_is_kt_over_c(self):
        # The classic: total noise of an RC lowpass = sqrt(kT/C), independent of R.
        for r in (1e2, 1e4):
            c = 1e-12
            lin = linearize(rc_lowpass(r, c))
            vn = integrated_output_noise(lin, "out", f_min=1.0, f_max=1e14)
            assert vn == pytest.approx(math.sqrt(KT_ROOM / c), rel=0.02)

    def test_resistor_divider_noise_psd(self):
        # Two equal resistors: output sees R/2 thermal noise.
        b = CircuitBuilder("div")
        b.v("in", "gnd", dc=0.0)
        b.r("in", "out", 1e3)
        b.r("out", "gnd", 1e3)
        lin = linearize(b.build())
        from repro.analysis import output_noise_psd

        psd = output_noise_psd(lin, "out", np.array([1e3]))
        assert psd[0] == pytest.approx(4 * KT_ROOM * 500.0, rel=1e-6)

    def test_mosfet_noise_matches_analytic(self):
        b = CircuitBuilder("cs", tech=CMOS025)
        b.v("vdd", "gnd", dc=3.3)
        b.v("bias", "gnd", dc=0.9)
        b.nmos("out", "bias", "gnd", w=20e-6, l=0.5e-6)
        b.r("vdd", "out", 20e3)
        ckt = b.build()
        op = solve_dc(ckt)
        m = op.device_ops["m1"]
        lin = linearize(ckt, op)
        from repro.analysis import output_noise_psd
        from repro.tech.mosfet import flicker_noise_psd, thermal_noise_psd

        f = 10e6  # far above the 1/f corner, below output pole
        psd = output_noise_psd(lin, "out", np.array([f]))[0]
        zout = 1.0 / (m.gds + 1.0 / 20e3)
        i_psd = (
            thermal_noise_psd(CMOS025.nmos, m.gm)
            + flicker_noise_psd(CMOS025.nmos, 20e-6, 0.5e-6, m.gm, f)
            + 4 * KT_ROOM / 20e3
        )
        assert psd == pytest.approx(i_psd * zout**2, rel=0.02)
