"""Batched lockstep DC Newton: equivalence, masking, and degradation.

The batched kernel's contract is weaker than the template kernel's
bit-identity story — lockstep trajectories are *cold-start*, so they match
the scalar solver's cold-start walk, not the chained warm results — but it
is exact where it matters:

* every member's solution satisfies KCL to the scalar solver's own
  residual tolerance, and agrees with the scalar cold-start solve;
* masked updates freeze converged members bitwise: a member's trajectory
  is identical whether it iterates alone or inside any population;
* members the lockstep cannot finish degrade individually (scalar-homotopy
  fallback, then a per-member failure report) instead of aborting the
  batch.
"""

import numpy as np
import pytest

from repro.analysis.dc import _ABS_TOL, _assemble, solve_dc
from repro.analysis.dcbatch import (
    NEWTON_STATS,
    _Population,
    lockstep_newton,
    reset_newton_stats,
    solve_dc_batch,
)
from repro.analysis.mna import layout_for
from repro.analysis.template import bind_template
from repro.circuit.elements import CurrentSource, Resistor, VoltageSource
from repro.circuit.netlist import Circuit
from repro.enumeration.candidates import PipelineCandidate
from repro.errors import AnalysisError, ConvergenceError, SynthesisError
from repro.specs import AdcSpec, plan_stages
from repro.synth import HybridEvaluator, two_stage_space
from repro.synth.evaluator import CornerSetEvaluator
from repro.tech import CMOS025
from repro.tech.process import CMOS025_SLOW


def _bench_population(count, seed=0):
    """Random opamp testbench sizings sharing one topology."""
    plan = plan_stages(
        AdcSpec(resolution_bits=13), PipelineCandidate((4, 3, 2), 13, 7)
    )
    mdac = plan.mdacs[2]
    space = two_stage_space(mdac, CMOS025)
    evaluator = HybridEvaluator(mdac, CMOS025)
    rng = np.random.default_rng(seed)
    benches = [
        evaluator._ac_bench(space.decode(rng.random(space.dimension)))
        for _ in range(count)
    ]
    return benches, evaluator


def _linear_circuit(r_load: float) -> Circuit:
    c = Circuit(f"lin_{r_load:g}")
    c.add(VoltageSource("v1", positive="a", negative="gnd", dc=1.0))
    c.add(Resistor("r1", "a", "b", 1e3))
    c.add(Resistor("r2", "b", "gnd", r_load))
    c.add(CurrentSource("i1", positive="b", negative="gnd", dc=1e-4))
    return c


class TestBatchedMatchesChainedColdStart:
    """Property: lockstep members equal the scalar cold-start solve."""

    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_random_population_within_residual_tolerance(self, seed):
        benches, evaluator = _bench_population(10, seed=seed)
        guess = evaluator._dc_guess()
        bounds = [bind_template(b) for b in benches]
        result = solve_dc_batch(bounds, initial_guess=guess)
        assert result.ok, result.failures
        for bench, sol in zip(benches, result.solutions):
            # The member's own residual claim holds against the *scalar*
            # assembly — the KCL tolerance, not a self-consistency check.
            layout = layout_for(bench)
            _, resid = _assemble(layout, sol.x, 0.0, 1.0)
            assert float(np.max(np.abs(resid))) < _ABS_TOL
            # And the solution agrees with the chained kernel's cold start.
            ref = solve_dc(bench, initial_guess=guess)
            for net, v in ref.voltages.items():
                assert sol.voltages[net] == pytest.approx(v, abs=1e-9), net

    def test_iterations_match_scalar_cold_walk(self):
        benches, evaluator = _bench_population(6, seed=5)
        guess = evaluator._dc_guess()
        result = solve_dc_batch(
            [bind_template(b) for b in benches], initial_guess=guess
        )
        for bench, sol in zip(benches, result.solutions):
            ref = solve_dc(bench, initial_guess=guess)
            if ref.strategy == "newton":  # plain-Newton members only
                assert sol.iterations == ref.iterations


class TestMaskedUpdates:
    """Converged members freeze bitwise while stragglers keep iterating."""

    def test_mixed_convergence_speeds_freeze_independently(self):
        benches, evaluator = _bench_population(12, seed=7)
        guess = evaluator._dc_guess()
        bounds = [bind_template(b) for b in benches]
        population = _Population(bounds)
        # Seed from the shared guess (not zeros) so speeds genuinely mix.
        from repro.analysis.dcbatch import _start_vector

        start = np.stack([_start_vector(b, guess) for b in bounds])
        x, status, iterations, residuals = lockstep_newton(population, start)
        assert (status == 1).all()
        assert len(set(iterations.tolist())) > 1, (
            "population converges in lockstep — pick sizings with mixed "
            "convergence speeds for this test"
        )
        # Bitwise freezing: each member alone reproduces its block result.
        for i, bound in enumerate(bounds):
            solo = _Population([bound])
            sx, sstatus, siters, _ = lockstep_newton(solo, start[i : i + 1])
            assert sstatus[0] == 1
            assert siters[0] == iterations[i]
            assert np.array_equal(sx[0], x[i])

    def test_population_composition_is_irrelevant(self):
        benches, evaluator = _bench_population(8, seed=2)
        guess = evaluator._dc_guess()
        bounds = [bind_template(b) for b in benches]
        full = solve_dc_batch(bounds, initial_guess=guess)
        half = solve_dc_batch(bounds[::2], initial_guess=guess)
        reversed_ = solve_dc_batch(list(reversed(bounds)), initial_guess=guess)
        for i, sol in enumerate(half.solutions):
            assert np.array_equal(sol.x, full.solutions[2 * i].x)
        for i, sol in enumerate(reversed_.solutions):
            assert np.array_equal(sol.x, full.solutions[len(bounds) - 1 - i].x)


class TestDegradationPaths:
    """Per-member fallback and failure reporting, never batch-wide raises."""

    def test_unconverged_members_fall_back_to_scalar_homotopy(self, monkeypatch):
        benches, evaluator = _bench_population(4, seed=1)
        guess = evaluator._dc_guess()
        bounds = [bind_template(b) for b in benches]
        import repro.analysis.dcbatch as dcbatch

        real = dcbatch.lockstep_newton

        def sabotaged(population, x0, **kwargs):
            x, status, iterations, residuals = real(population, x0, **kwargs)
            status[::2] = 2  # report half the members diverged
            return x, status, iterations, residuals

        monkeypatch.setattr(dcbatch, "lockstep_newton", sabotaged)
        reset_newton_stats()
        result = solve_dc_batch(bounds, initial_guess=guess)
        assert result.ok
        assert result.fallback_members == (0, 2)
        assert NEWTON_STATS["fallbacks"] == 2
        assert NEWTON_STATS["failures"] == 0
        for i in (0, 2):
            ref = solve_dc(benches[i], initial_guess=guess)
            assert np.array_equal(result.solutions[i].x, ref.x)

    def test_failures_name_members_instead_of_raising(self, monkeypatch):
        benches, evaluator = _bench_population(3, seed=1)
        guess = evaluator._dc_guess()
        bounds = [bind_template(b) for b in benches]
        import repro.analysis.dcbatch as dcbatch

        real = dcbatch.lockstep_newton

        def sabotaged(population, x0, **kwargs):
            x, status, iterations, residuals = real(population, x0, **kwargs)
            status[1] = 2
            return x, status, iterations, residuals

        def failing_solve(circuit, initial_guess=None, x0=None, assembly=None):
            raise ConvergenceError("no dice")

        monkeypatch.setattr(dcbatch, "lockstep_newton", sabotaged)
        monkeypatch.setattr(dcbatch, "solve_dc", failing_solve)
        reset_newton_stats()
        result = solve_dc_batch(bounds, initial_guess=guess)
        assert not result.ok
        assert set(result.failures) == {1}
        assert "no dice" in result.failures[1]
        assert result.solutions[1] is None
        assert result.solutions[0] is not None and result.solutions[2] is not None
        assert NEWTON_STATS["failures"] == 1

    def test_mixed_topologies_group_internally(self):
        benches, evaluator = _bench_population(2, seed=4)
        guess = evaluator._dc_guess()
        linear = [_linear_circuit(2e3), _linear_circuit(5e3)]
        bounds = [
            bind_template(benches[0]),
            bind_template(linear[0]),
            bind_template(benches[1]),
            bind_template(linear[1]),
        ]
        guesses = [guess, None, guess, None]
        result = solve_dc_batch(bounds, initial_guess=guesses)
        assert result.ok
        for circuit, sol in zip(
            (benches[0], linear[0], benches[1], linear[1]), result.solutions
        ):
            ref = solve_dc(circuit, initial_guess=guess if "acbench" in circuit.name else None)
            for net, v in ref.voltages.items():
                assert sol.voltages[net] == pytest.approx(v, abs=1e-9)

    def test_guess_list_length_mismatch_raises(self):
        benches, _ = _bench_population(2, seed=4)
        with pytest.raises(AnalysisError):
            solve_dc_batch([bind_template(b) for b in benches], initial_guess=[None])


class TestTelemetry:
    def test_counters_account_for_every_member(self):
        benches, evaluator = _bench_population(9, seed=6)
        guess = evaluator._dc_guess()
        reset_newton_stats()
        result = solve_dc_batch(
            [bind_template(b) for b in benches], initial_guess=guess
        )
        assert result.ok
        assert NEWTON_STATS["lockstep_calls"] == 1
        assert NEWTON_STATS["lockstep_members"] == 9
        assert NEWTON_STATS["converged"] + NEWTON_STATS["fallbacks"] == 9
        assert NEWTON_STATS["lockstep_iterations"] >= max(
            s.iterations for s in result.solutions
        )
        # Occupancy sums the active count per iteration: bounded by a full
        # block every iteration, and at least one member per iteration.
        assert (
            NEWTON_STATS["lockstep_iterations"]
            <= NEWTON_STATS["mask_occupancy"]
            <= NEWTON_STATS["lockstep_iterations"] * 9
        )
        assert NEWTON_STATS["member_iterations"] == sum(
            s.iterations for s in result.solutions
        )

    def test_reset_zeroes_all_counters(self):
        reset_newton_stats()
        assert all(v == 0 for v in NEWTON_STATS.values())


class TestEvaluatorIntegration:
    @pytest.fixture(scope="class")
    def setup(self):
        plan = plan_stages(
            AdcSpec(resolution_bits=13), PipelineCandidate((4, 3, 2), 13, 7)
        )
        mdac = plan.mdacs[2]
        space = two_stage_space(mdac, CMOS025)
        rng = np.random.default_rng(9)
        sizings = [space.decode(rng.random(space.dimension)) for _ in range(16)]
        return mdac, sizings

    def test_batched_requires_compiled_kernel(self, setup):
        mdac, _ = setup
        with pytest.raises(SynthesisError):
            HybridEvaluator(mdac, CMOS025, kernel="legacy", dc_kernel="batched")
        with pytest.raises(SynthesisError):
            HybridEvaluator(mdac, CMOS025, dc_kernel="warp")

    def test_single_evaluate_equals_batch_member(self, setup):
        mdac, sizings = setup
        ev = HybridEvaluator(mdac, CMOS025, dc_kernel="batched")
        batch = ev.evaluate_batch(sizings[:6])
        ev2 = HybridEvaluator(mdac, CMOS025, dc_kernel="batched")
        for sizing, expected in zip(sizings[:6], batch):
            got = ev2.evaluate(sizing)
            assert got.cost() == expected.cost()
            assert got.feasible == expected.feasible

    def test_batch_results_are_order_independent(self, setup):
        mdac, sizings = setup
        ev = HybridEvaluator(mdac, CMOS025, dc_kernel="batched")
        forward = ev.evaluate_batch(sizings)
        backward = ev.evaluate_batch(list(reversed(sizings)))
        for a, b in zip(forward, reversed(backward)):
            assert a.cost() == b.cost()

    def test_batched_agrees_with_chained_on_feasibility(self, setup):
        mdac, sizings = setup
        chained = HybridEvaluator(mdac, CMOS025).evaluate_batch(sizings)
        batched = HybridEvaluator(
            mdac, CMOS025, dc_kernel="batched"
        ).evaluate_batch(sizings)
        agree = sum(
            1 for a, b in zip(chained, batched) if a.feasible == b.feasible
        )
        # Warm starts vs cold starts may legitimately disagree on members
        # whose chained solve landed on a warm-chain-dependent operating
        # point; the population must agree on the overwhelming majority.
        assert agree >= len(sizings) - 1
        for a, b in zip(chained, batched):
            if np.isfinite(a.cost()) and np.isfinite(b.cost()):
                assert b.cost() == pytest.approx(a.cost(), rel=1e-3)

    def test_corner_lockstep_matches_per_corner_batched(self, setup):
        mdac, sizings = setup
        corner_ev = CornerSetEvaluator(
            mdac, [CMOS025, CMOS025_SLOW], dc_kernel="batched"
        )
        fused = corner_ev.evaluate_batch(sizings[:8])
        for c, tech in enumerate((CMOS025, CMOS025_SLOW)):
            solo = HybridEvaluator(mdac, tech, dc_kernel="batched")
            standalone = solo.evaluate_batch(sizings[:8])
            for a, b in zip(fused[c], standalone):
                assert a.cost() == b.cost()
                assert a.feasible == b.feasible

    def test_speculation_rewind_is_trivial_under_cold_starts(self, setup):
        mdac, sizings = setup
        ev = HybridEvaluator(mdac, CMOS025, dc_kernel="batched")
        ev.evaluate_batch(sizings[:5])
        assert ev._batch_warm_trace == [None] * 5
        assert ev._warm_x is None
