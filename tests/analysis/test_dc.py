"""DC operating-point solver tests against hand-calculable circuits."""

import math

import pytest

from repro.circuit.builder import CircuitBuilder
from repro.errors import ConvergenceError
from repro.analysis import solve_dc
from repro.tech import CMOS025


class TestLinearCircuits:
    def test_voltage_divider(self):
        b = CircuitBuilder("divider")
        b.v("in", "gnd", dc=3.3)
        b.r("in", "out", 1e3)
        b.r("out", "gnd", 2e3)
        sol = solve_dc(b.build())
        assert sol.voltages["out"] == pytest.approx(3.3 * 2 / 3, rel=1e-9)

    def test_source_current_through_divider(self):
        b = CircuitBuilder("divider")
        v = b.v("in", "gnd", dc=3.0)
        b.r("in", "gnd", 1e3)
        sol = solve_dc(b.build())
        # 3 mA delivered by the source.
        assert sol.supply_current(v.name) == pytest.approx(3e-3, rel=1e-9)

    def test_current_source_into_resistor(self):
        b = CircuitBuilder("isrc")
        b.i("gnd", "out", dc=1e-3)  # pushes current into node out
        b.r("out", "gnd", 2e3)
        sol = solve_dc(b.build())
        assert sol.voltages["out"] == pytest.approx(2.0, rel=1e-9)

    def test_vcvs_amplifier(self):
        b = CircuitBuilder("vcvs")
        b.v("in", "gnd", dc=0.1)
        b.r("in", "gnd", 1e6)
        b.vcvs("out", "gnd", "in", "gnd", gain=50.0)
        b.r("out", "gnd", 1e3)
        sol = solve_dc(b.build())
        assert sol.voltages["out"] == pytest.approx(5.0, rel=1e-9)

    def test_vccs(self):
        b = CircuitBuilder("vccs")
        b.v("in", "gnd", dc=1.0)
        b.r("in", "gnd", 1e6)
        b.vccs("gnd", "out", "in", "gnd", gm=1e-3)  # 1 mA into out
        b.r("out", "gnd", 1e3)
        sol = solve_dc(b.build())
        assert sol.voltages["out"] == pytest.approx(1.0, rel=1e-9)

    def test_inductor_is_dc_short(self):
        b = CircuitBuilder("rl")
        b.v("in", "gnd", dc=1.0)
        b.l("in", "out", 1e-6)
        b.r("out", "gnd", 1e3)
        sol = solve_dc(b.build())
        assert sol.voltages["out"] == pytest.approx(1.0, rel=1e-9)
        assert sol.branch_currents["l1"] == pytest.approx(1e-3, rel=1e-9)

    def test_capacitor_is_dc_open(self):
        b = CircuitBuilder("rc")
        b.v("in", "gnd", dc=2.0)
        b.r("in", "out", 1e3)
        b.c("out", "gnd", 1e-12)
        b.r("out", "gnd", 1e6)
        sol = solve_dc(b.build())
        # No current through the cap: divider 1k/1M.
        assert sol.voltages["out"] == pytest.approx(2.0 * 1e6 / (1e6 + 1e3), rel=1e-9)

    def test_wheatstone_bridge(self):
        b = CircuitBuilder("bridge")
        b.v("top", "gnd", dc=1.0)
        b.r("top", "a", 1e3)
        b.r("top", "b", 2e3)
        b.r("a", "gnd", 2e3)
        b.r("b", "gnd", 1e3)
        b.r("a", "b", 5e3)
        sol = solve_dc(b.build())
        # Solved by hand: nodal equations with bridge resistor.
        va, vb = sol.voltages["a"], sol.voltages["b"]
        # KCL check at node a: (va-1)/1k + va/2k + (va-vb)/5k = 0
        assert (va - 1) / 1e3 + va / 2e3 + (va - vb) / 5e3 == pytest.approx(0.0, abs=1e-12)
        assert (vb - 1) / 2e3 + vb / 1e3 + (vb - va) / 5e3 == pytest.approx(0.0, abs=1e-12)


class TestNonlinearCircuits:
    def test_diode_connected_nmos(self):
        b = CircuitBuilder("diode", tech=CMOS025)
        b.v("vdd", "gnd", dc=3.3)
        b.r("vdd", "d", 10e3)
        b.nmos("d", "d", "gnd", w=10e-6, l=1e-6)
        sol = solve_dc(b.build())
        vgs = sol.voltages["d"]
        # Device must be on, in saturation (diode connected), below VDD.
        assert CMOS025.nmos.vth0 < vgs < 3.3
        op = sol.device_ops["m1"]
        assert op.region == "saturation"
        # Current through resistor equals device current.
        i_r = (3.3 - vgs) / 10e3
        assert op.ids == pytest.approx(i_r, rel=1e-3)

    def test_common_source_amplifier_bias(self):
        b = CircuitBuilder("cs", tech=CMOS025)
        b.v("vdd", "gnd", dc=3.3)
        b.v("bias", "gnd", dc=0.9)
        b.nmos("out", "bias", "gnd", w=20e-6, l=0.5e-6)
        b.r("vdd", "out", 5e3)
        sol = solve_dc(b.build())
        assert 0.0 < sol.voltages["out"] < 3.3
        assert sol.device_ops["m1"].gm > 0

    def test_nmos_current_mirror(self):
        b = CircuitBuilder("mirror", tech=CMOS025)
        b.v("vdd", "gnd", dc=3.3)
        b.i("vdd", "ref", dc=100e-6)  # reference current into diode device
        b.nmos("ref", "ref", "gnd", w=10e-6, l=1e-6, name="mref")
        b.nmos("out", "ref", "gnd", w=20e-6, l=1e-6, name="mout")
        b.r("vdd", "out", 5e3)
        sol = solve_dc(b.build())
        iout = sol.device_ops["mout"].ids
        # 2x mirror ratio, allow CLM error.
        assert iout == pytest.approx(200e-6, rel=0.1)

    def test_pmos_common_source(self):
        b = CircuitBuilder("csp", tech=CMOS025)
        b.v("vdd", "gnd", dc=3.3)
        b.v("bias", "gnd", dc=2.2)  # vgs = -1.1 for the PMOS
        b.pmos("out", "bias", "vdd", "vdd", w=40e-6, l=0.5e-6)
        b.r("out", "gnd", 5e3)
        sol = solve_dc(b.build())
        assert 0.0 < sol.voltages["out"] < 3.3
        assert sol.device_ops["m1"].ids < 0  # current out of PMOS drain

    def test_five_transistor_ota_bias(self):
        tech = CMOS025
        b = CircuitBuilder("ota5", tech=tech)
        b.v("vdd", "gnd", dc=3.3)
        b.v("vip", "gnd", dc=1.2)
        b.v("vim", "gnd", dc=1.2)
        b.i("vdd", "bias", dc=50e-6)
        b.nmos("bias", "bias", "gnd", w=10e-6, l=1e-6, name="mb1")
        b.nmos("tail", "bias", "gnd", w=20e-6, l=1e-6, name="mb2")
        b.nmos("x", "vip", "tail", w=20e-6, l=0.5e-6, name="m1")
        b.nmos("out", "vim", "tail", w=20e-6, l=0.5e-6, name="m2")
        b.pmos("x", "x", "vdd", "vdd", w=20e-6, l=0.5e-6, name="m3")
        b.pmos("out", "x", "vdd", "vdd", w=20e-6, l=0.5e-6, name="m4")
        sol = solve_dc(b.build())
        # Balanced inputs: output should sit near the mirror voltage vx.
        assert sol.voltages["out"] == pytest.approx(sol.voltages["x"], abs=0.2)
        # Tail current splits evenly.
        i1 = sol.device_ops["m1"].ids
        i2 = sol.device_ops["m2"].ids
        assert i1 == pytest.approx(i2, rel=0.05)
        assert i1 + i2 == pytest.approx(100e-6, rel=0.15)


class TestSolverRobustness:
    def test_warm_start_from_previous_solution(self):
        b = CircuitBuilder("warm", tech=CMOS025)
        b.v("vdd", "gnd", dc=3.3)
        b.r("vdd", "d", 10e3)
        b.nmos("d", "d", "gnd", w=10e-6, l=1e-6)
        ckt = b.build()
        cold = solve_dc(ckt)
        warm = solve_dc(ckt, x0=cold.x)
        assert warm.iterations <= cold.iterations
        assert warm.voltages["d"] == pytest.approx(cold.voltages["d"], abs=1e-9)

    def test_initial_guess_by_net(self):
        b = CircuitBuilder("guess", tech=CMOS025)
        b.v("vdd", "gnd", dc=3.3)
        b.r("vdd", "d", 10e3)
        b.nmos("d", "d", "gnd", w=10e-6, l=1e-6)
        sol = solve_dc(b.build(), initial_guess={"d": 0.8, "vdd": 3.3})
        assert sol.voltages["d"] > 0.5

    def test_kcl_residual_is_tiny(self):
        b = CircuitBuilder("res", tech=CMOS025)
        b.v("vdd", "gnd", dc=3.3)
        b.v("bias", "gnd", dc=1.0)
        b.nmos("out", "bias", "gnd", w=20e-6, l=0.5e-6)
        b.r("vdd", "out", 5e3)
        sol = solve_dc(b.build())
        assert sol.residual < 1e-9

    def test_bad_x0_size_rejected(self):
        import numpy as np

        b = CircuitBuilder("divider")
        b.v("in", "gnd", dc=3.3)
        b.r("in", "gnd", 1e3)
        with pytest.raises(ConvergenceError):
            solve_dc(b.build(), x0=np.zeros(99))
