"""Transient engine tests against analytic step responses."""

import math

import numpy as np
import pytest

from repro.analysis import simulate_transient
from repro.circuit.builder import CircuitBuilder
from repro.errors import AnalysisError
from repro.tech import CMOS025


class TestRcStep:
    def make_rc(self, r=1e3, c=1e-9, vstep=1.0):
        b = CircuitBuilder("rc")
        b.v("in", "gnd", dc=0.0, waveform=lambda t: vstep if t > 0 else 0.0)
        b.r("in", "out", r)
        b.c("out", "gnd", c)
        return b.build()

    def test_rc_charging_curve(self):
        r, c = 1e3, 1e-9
        tau = r * c
        result = simulate_transient(self.make_rc(r, c), t_stop=5 * tau, dt=tau / 200)
        expected = 1.0 - np.exp(-result.time / tau)
        error = np.max(np.abs(result.voltage("out") - expected))
        assert error < 5e-3

    def test_final_value(self):
        result = simulate_transient(self.make_rc(), t_stop=10e-6, dt=10e-9)
        assert result.final_value("out") == pytest.approx(1.0, abs=1e-4)

    def test_backward_euler_also_converges(self):
        r, c = 1e3, 1e-9
        tau = r * c
        result = simulate_transient(
            self.make_rc(r, c), t_stop=8 * tau, dt=tau / 400, method="be"
        )
        assert result.final_value("out") == pytest.approx(1.0, abs=1e-3)

    def test_settling_time_measurement(self):
        r, c = 1e3, 1e-9
        tau = r * c
        result = simulate_transient(self.make_rc(r, c), t_stop=12 * tau, dt=tau / 100)
        ts = result.settling_time("out", target=1.0, tolerance=math.exp(-5))
        # Settling to e^-5 of a unit step takes 5 tau.
        assert ts == pytest.approx(5 * tau, rel=0.05)

    def test_unknown_net_raises(self):
        result = simulate_transient(self.make_rc(), t_stop=1e-6, dt=1e-8, record=["out"])
        with pytest.raises(AnalysisError):
            result.voltage("nope")

    def test_invalid_timestep_rejected(self):
        with pytest.raises(AnalysisError):
            simulate_transient(self.make_rc(), t_stop=1e-6, dt=0.0)
        with pytest.raises(AnalysisError):
            simulate_transient(self.make_rc(), t_stop=1e-6, dt=1e-5)
        with pytest.raises(AnalysisError):
            simulate_transient(self.make_rc(), t_stop=1e-6, dt=1e-8, method="rk4")


class TestRlStep:
    def test_rl_current_rise(self):
        r, l = 1e3, 1e-6
        tau = l / r
        b = CircuitBuilder("rl")
        b.v("in", "gnd", dc=0.0, waveform=lambda t: 1.0 if t > 0 else 0.0)
        b.r("in", "mid", r)
        b.l("mid", "gnd", l)
        result = simulate_transient(b.build(), t_stop=6 * tau, dt=tau / 200)
        # v_mid decays to 0 as the inductor current ramps to 1/R.
        assert result.voltage("mid")[1] > 0.9
        assert result.final_value("mid") == pytest.approx(0.0, abs=5e-3)


class TestSwitching:
    def test_switched_rc_tracks_phase(self):
        # Switch closes for t < 0.5us (charging), then opens (hold).
        b = CircuitBuilder("swrc")
        b.v("in", "gnd", dc=1.0)
        b.switch("in", "out", phase=lambda t: t < 0.5e-6, r_on=100.0)
        b.c("out", "gnd", 100e-12)
        result = simulate_transient(b.build(), t_stop=1e-6, dt=1e-9)
        # tau_on = 10ns, so fully charged by 0.5us; then held.
        mid = result.voltage("out")[len(result.time) // 2]
        assert mid == pytest.approx(1.0, abs=1e-3)
        assert result.final_value("out") == pytest.approx(1.0, abs=1e-2)

    def test_sample_and_hold_action(self):
        # Track a ramp, then hold its value at the switching instant.
        b = CircuitBuilder("sah")
        b.v("in", "gnd", dc=0.0, waveform=lambda t: 1e6 * t)  # 1 V/us ramp
        b.switch("in", "out", phase=lambda t: t < 1e-6, r_on=10.0)
        b.c("out", "gnd", 10e-12)
        result = simulate_transient(b.build(), t_stop=2e-6, dt=2e-9)
        held = result.final_value("out")
        assert held == pytest.approx(1.0, rel=0.01)


class TestNonlinearTransient:
    def test_nmos_source_follower_step(self):
        b = CircuitBuilder("sf", tech=CMOS025)
        b.v("vdd", "gnd", dc=3.3)
        b.v("in", "gnd", dc=1.5, waveform=lambda t: 1.5 + (0.5 if t > 10e-9 else 0.0))
        b.nmos("vdd", "in", "out", w=50e-6, l=0.25e-6)
        b.i("out", "gnd", dc=200e-6)
        b.c("out", "gnd", 1e-12)
        result = simulate_transient(b.build(), t_stop=100e-9, dt=0.2e-9)
        v0 = result.voltage("out")[0]
        vf = result.final_value("out")
        # Follower tracks the 0.5 V input step with near-unity gain.
        assert vf - v0 == pytest.approx(0.5, abs=0.1)

    def test_slewing_behaviour_of_gm_stage(self):
        # A differential-pair-like stage with finite tail current slews:
        # output ramp limited to I/C, not the linear prediction.
        b = CircuitBuilder("slew", tech=CMOS025)
        b.v("vdd", "gnd", dc=3.3)
        b.v("step", "gnd", dc=0.6, waveform=lambda t: 0.6 if t < 5e-9 else 2.2)
        b.nmos("out", "step", "gnd", w=4e-6, l=1e-6)
        b.r("vdd", "out", 100e3)
        b.c("out", "gnd", 5e-12)
        result = simulate_transient(b.build(), t_stop=200e-9, dt=0.2e-9)
        v = result.voltage("out")
        # Output starts high (device nearly off), ends low (device on hard).
        assert v[0] > 2.5
        assert result.final_value("out") < 0.7
