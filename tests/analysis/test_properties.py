"""Property-based cross-validation of the analysis engines.

Random RC ladder networks are solved three independent ways — DC Newton,
MNA AC, and DPI/SFG + Mason — and must agree; KCL must hold at every node
of every DC solution.
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import ac_transfer, linearize, solve_dc
from repro.circuit.builder import CircuitBuilder
from repro.sfg import build_sfg, mason_gain, small_signal_bindings


@st.composite
def ladder_values(draw):
    """Random 2-4 section RC ladder component values."""
    n = draw(st.integers(min_value=2, max_value=4))
    rs = [draw(st.floats(min_value=100.0, max_value=1e5)) for _ in range(n)]
    cs = [draw(st.floats(min_value=1e-13, max_value=1e-9)) for _ in range(n)]
    shunt_r = [draw(st.one_of(st.none(), st.floats(min_value=1e3, max_value=1e6))) for _ in range(n)]
    return rs, cs, shunt_r


def build_ladder(rs, cs, shunt_r):
    b = CircuitBuilder("ladder")
    b.v("n0", "gnd", dc=1.0, ac=1.0)
    prev = "n0"
    for i, (r, c, rsh) in enumerate(zip(rs, cs, shunt_r), start=1):
        node = f"n{i}"
        b.r(prev, node, r)
        b.c(node, "gnd", c)
        if rsh is not None:
            b.r(node, "gnd", rsh)
        prev = node
    return b.build(), prev


@settings(max_examples=40, deadline=None)
@given(ladder_values())
def test_dc_kcl_holds_on_random_ladders(values):
    rs, cs, shunt_r = values
    circuit, _ = build_ladder(rs, cs, shunt_r)
    sol = solve_dc(circuit)
    assert sol.residual < 1e-9


@settings(max_examples=40, deadline=None)
@given(ladder_values())
def test_dc_voltages_monotone_down_resistive_ladder(values):
    rs, cs, shunt_r = values
    circuit, out = build_ladder(rs, cs, shunt_r)
    sol = solve_dc(circuit)
    voltages = [sol.voltages[f"n{i}"] for i in range(len(rs) + 1)]
    assert all(a >= b - 1e-12 for a, b in zip(voltages, voltages[1:]))
    assert 0.0 <= sol.voltages[out] <= 1.0 + 1e-12


@settings(max_examples=25, deadline=None)
@given(ladder_values(), st.floats(min_value=3.0, max_value=9.0))
def test_sfg_matches_mna_on_random_ladders(values, log_freq):
    rs, cs, shunt_r = values
    circuit, out = build_ladder(rs, cs, shunt_r)
    frequency = 10.0**log_freq

    op = solve_dc(circuit)
    lin = linearize(circuit, op)
    h_mna = ac_transfer(lin, out, np.array([frequency]))[0]

    graph, src = build_sfg(circuit)
    h_sym = mason_gain(graph, src, out)
    got = h_sym(2j * math.pi * frequency, small_signal_bindings(circuit, op))

    assert abs(got - h_mna) <= 1e-6 * max(abs(h_mna), 1e-12)


@settings(max_examples=25, deadline=None)
@given(ladder_values())
def test_passive_network_gain_bounded_by_one(values):
    rs, cs, shunt_r = values
    circuit, out = build_ladder(rs, cs, shunt_r)
    lin = linearize(circuit, solve_dc(circuit))
    freqs = np.logspace(2, 10, 17)
    mags = np.abs(ac_transfer(lin, out, freqs))
    assert np.all(mags <= 1.0 + 1e-9)


@settings(max_examples=20, deadline=None)
@given(ladder_values())
def test_integrated_noise_bounded_by_total_kt_over_c(values):
    # For any RC ladder the output noise cannot exceed kT over the smallest
    # capacitance in the path (the single-cap bound is the worst case).
    from repro.analysis import integrated_output_noise
    from repro.constants import KT_ROOM

    rs, cs, shunt_r = values
    circuit, out = build_ladder(rs, cs, shunt_r)
    lin = linearize(circuit, solve_dc(circuit))
    vn = integrated_output_noise(lin, out, f_min=1.0, f_max=1e13)
    bound = math.sqrt(KT_ROOM / min(cs))
    assert vn <= bound * 1.1
