"""Compiled MNA templates must replay the legacy stamp walk bit-for-bit.

This is the contract that lets the compiled kernel be the default
evaluation path while campaign records stay byte-identical to the legacy
path: every jacobian, residual, small-signal matrix and DC solution the
template produces equals the element-walk result exactly — not to a
tolerance, to the bit.
"""

import numpy as np
import pytest

from repro.analysis.dc import _assemble, solve_dc
from repro.analysis.mna import MnaLayout, layout_cache_disabled, layout_for
from repro.analysis.smallsignal import linearize
from repro.analysis.template import MnaTemplate, bind_template, template_for
from repro.circuit.elements import (
    Capacitor,
    CurrentSource,
    Inductor,
    Resistor,
    Switch,
    Vccs,
    Vcvs,
    VoltageSource,
)
from repro.circuit.netlist import Circuit
from repro.enumeration.candidates import PipelineCandidate
from repro.errors import AnalysisError
from repro.specs import AdcSpec, plan_stages
from repro.synth import HybridEvaluator, two_stage_space
from repro.tech import CMOS025


def _opamp_bench(seed: int = 0):
    plan = plan_stages(AdcSpec(resolution_bits=13), PipelineCandidate((4, 3, 2), 13, 7))
    mdac = plan.mdacs[2]
    space = two_stage_space(mdac, CMOS025)
    evaluator = HybridEvaluator(mdac, CMOS025)
    rng = np.random.default_rng(seed)
    sizing = space.decode(rng.random(space.dimension))
    return evaluator._ac_bench(sizing), evaluator


def _mixed_circuit() -> Circuit:
    """Every element type the DC/AC templates support, in one netlist."""
    c = Circuit("mixed")
    c.add(VoltageSource("vin", positive="a", negative="gnd", dc=1.0, ac=1.0))
    c.add(Resistor("r1", "a", "b", 1e3))
    c.add(Inductor("l1", "b", "c", 1e-6))
    c.add(Capacitor("c1", "c", "gnd", 1e-12))
    c.add(
        Vccs("g1", out_positive="d", out_negative="gnd",
             ctrl_positive="c", ctrl_negative="gnd", gm=1e-3)
    )
    c.add(Resistor("r2", "d", "gnd", 5e3))
    c.add(
        Vcvs("e1", out_positive="e", out_negative="gnd",
             ctrl_positive="d", ctrl_negative="gnd", gain=2.5)
    )
    c.add(Switch("sw1", "e", "f", phase=lambda t: True, r_on=50.0))
    c.add(Resistor("r3", "f", "gnd", 2e3))
    c.add(CurrentSource("i1", positive="f", negative="gnd", dc=1e-4, ac=0.5))
    return c


class TestAssembleBitIdentity:
    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_opamp_bench_assemble(self, seed):
        bench, _ = _opamp_bench(seed)
        layout = layout_for(bench)
        bound = bind_template(bench)
        rng = np.random.default_rng(seed + 100)
        for _ in range(3):
            x = rng.standard_normal(layout.size)
            for gmin, scale in ((0.0, 1.0), (1e-3, 1.0), (1e-9, 0.35)):
                jac_ref, res_ref = _assemble(layout, x, gmin, scale)
                jac, res = bound.assemble(x, gmin, scale)
                assert np.array_equal(jac_ref, jac)
                assert np.array_equal(res_ref, res)

    def test_mixed_elements_assemble(self):
        circuit = _mixed_circuit()
        layout = layout_for(circuit)
        bound = bind_template(circuit)
        rng = np.random.default_rng(2)
        for _ in range(4):
            x = rng.standard_normal(layout.size)
            for gmin, scale in ((0.0, 1.0), (1e-4, 0.7), (1e-9, 0.05)):
                jac_ref, res_ref = _assemble(layout, x, gmin, scale)
                jac, res = bound.assemble(x, gmin, scale)
                assert np.array_equal(jac_ref, jac)
                assert np.array_equal(res_ref, res)

    def test_solve_dc_identical(self):
        bench, evaluator = _opamp_bench(5)
        ref = solve_dc(bench, initial_guess=evaluator._dc_guess())
        via_template = solve_dc(
            bench,
            initial_guess=evaluator._dc_guess(),
            assembly=bind_template(bench),
        )
        assert np.array_equal(ref.x, via_template.x)
        assert ref.iterations == via_template.iterations
        assert ref.strategy == via_template.strategy
        assert ref.voltages == via_template.voltages
        assert ref.branch_currents == via_template.branch_currents

    def test_linearize_identical(self):
        for circuit, guess in (
            _opamp_bench(7)[:1] + (None,),
            (_mixed_circuit(), None),
        ):
            op = solve_dc(circuit)
            bound = bind_template(circuit)
            ref = linearize(circuit, op, include_noise=False)
            lin = bound.linearize(op)
            assert np.array_equal(ref.g_matrix, lin.g_matrix)
            assert np.array_equal(ref.c_matrix, lin.c_matrix)
            assert np.array_equal(ref.b_ac, lin.b_ac)


class TestTemplateCacheAndBinding:
    def test_template_cached_per_topology(self):
        bench_a, _ = _opamp_bench(1)
        bench_b, _ = _opamp_bench(2)  # same topology, different sizing
        assert template_for(bench_a) is template_for(bench_b)

    def test_bind_rejects_other_topology(self):
        bench, _ = _opamp_bench(1)
        template = template_for(bench)
        with pytest.raises(AnalysisError):
            template.bind(_mixed_circuit())

    def test_rebind_refreshes_values(self):
        bench_a, _ = _opamp_bench(1)
        bench_b, _ = _opamp_bench(2)
        bound = bind_template(bench_a)
        bound.rebind(bench_b)
        reference = bind_template(bench_b)
        layout = layout_for(bench_b)
        x = np.random.default_rng(0).standard_normal(layout.size)
        jac_a, res_a = bound.assemble(x, 0.0, 1.0)
        jac_b, res_b = reference.assemble(x, 0.0, 1.0)
        assert np.array_equal(jac_a, jac_b)
        assert np.array_equal(res_a, res_b)

    def test_layout_cache_shares_structure_not_values(self):
        bench_a, _ = _opamp_bench(1)
        bench_b, _ = _opamp_bench(2)
        layout_a = layout_for(bench_a)
        layout_b = layout_for(bench_b)
        assert layout_a.node_of is layout_b.node_of  # shared index maps
        assert layout_b.circuit is bench_b  # values from the live circuit

    def test_layout_cache_disabled_context(self):
        bench, _ = _opamp_bench(1)
        with layout_cache_disabled():
            fresh = layout_for(bench)
        assert isinstance(fresh, MnaLayout)
        assert fresh.node_of == layout_for(bench).node_of

    def test_topology_key_invalidates_on_mutation(self):
        circuit = _mixed_circuit()
        key = circuit.topology_key()
        circuit.add(Resistor("extra", "f", "gnd", 1e4))
        assert circuit.topology_key() != key
        circuit.remove("extra")
        assert circuit.topology_key() == key

    def test_unsupported_element_raises(self):
        c = Circuit("bad")
        c.add(VoltageSource("v1", positive="a", negative="gnd", dc=1.0))

        class Weird(Resistor):
            pass

        # A subclass is fine (isinstance dispatch); a genuinely unknown
        # element type is rejected at compile time.
        c.add(Weird("w1", "a", "gnd", 1.0))
        MnaTemplate(c)  # subclass compiles

        from repro.circuit.elements import Element
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class Alien(Element):
            n1: str = "a"
            n2: str = "gnd"

            @property
            def nodes(self):
                return (self.n1, self.n2)

        c2 = Circuit("bad2")
        c2.add(VoltageSource("v1", positive="a", negative="gnd", dc=1.0))
        c2.add(Alien("alien"))
        with pytest.raises(AnalysisError):
            MnaTemplate(c2)
