"""Unit tests for the fluent circuit builder."""

import pytest

from repro.circuit.builder import CircuitBuilder
from repro.errors import NetlistError
from repro.tech import CMOS025


class TestBuilder:
    def test_auto_naming(self):
        b = CircuitBuilder("t")
        r1 = b.r("a", "gnd", 1.0)
        r2 = b.r("a", "gnd", 2.0)
        assert (r1.name, r2.name) == ("r1", "r2")

    def test_explicit_name_wins(self):
        b = CircuitBuilder("t")
        r = b.r("a", "gnd", 1.0, name="rload")
        assert r.name == "rload"

    def test_prefixes_by_type(self):
        b = CircuitBuilder("t", tech=CMOS025)
        assert b.c("a", "gnd", 1e-12).name == "c1"
        assert b.v("a", "gnd", 1.0).name == "v1"
        assert b.i("a", "gnd", 1e-3).name == "i1"
        assert b.l("a", "gnd", 1e-9).name == "l1"
        assert b.vcvs("x", "gnd", "a", "gnd", 10.0).name == "e1"
        assert b.vccs("x", "gnd", "a", "gnd", 1e-3).name == "g1"
        assert b.nmos("x", "a", "gnd").name == "m1"

    def test_mosfet_requires_tech_or_params(self):
        b = CircuitBuilder("t")
        with pytest.raises(ValueError):
            b.nmos("d", "g", "gnd")
        m = b.nmos("d", "g", "gnd", params=CMOS025.nmos)
        assert m.params is CMOS025.nmos

    def test_build_validates(self):
        b = CircuitBuilder("t")
        b.r("a", "b", 1.0)
        with pytest.raises(NetlistError):
            b.build()

    def test_build_without_validation(self):
        b = CircuitBuilder("t")
        b.r("a", "b", 1.0)
        ckt = b.build(validate=False)
        assert len(ckt) == 1

    def test_divider_builds_and_validates(self):
        b = CircuitBuilder("divider")
        b.v("in", "gnd", dc=3.3)
        b.r("in", "out", 1e3)
        b.r("out", "gnd", 1e3)
        ckt = b.build()
        assert len(ckt) == 3
