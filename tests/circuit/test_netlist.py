"""Unit tests for the circuit container and elements."""

import pytest

from repro.circuit import (
    Capacitor,
    Circuit,
    CurrentSource,
    Mosfet,
    Resistor,
    Switch,
    VoltageSource,
)
from repro.errors import NetlistError
from repro.tech import CMOS025


def small_circuit() -> Circuit:
    ckt = Circuit("divider")
    ckt.add(VoltageSource("vin", "in", "gnd", dc=3.3))
    ckt.add(Resistor("r1", "in", "out", 1e3))
    ckt.add(Resistor("r2", "out", "gnd", 1e3))
    return ckt


class TestCircuit:
    def test_add_and_lookup(self):
        ckt = small_circuit()
        assert len(ckt) == 3
        assert ckt["r1"].resistance == 1e3
        assert "r2" in ckt

    def test_duplicate_name_rejected(self):
        ckt = small_circuit()
        with pytest.raises(NetlistError, match="duplicate"):
            ckt.add(Resistor("r1", "a", "gnd", 1.0))

    def test_unknown_lookup_raises(self):
        with pytest.raises(NetlistError):
            small_circuit()["nope"]

    def test_remove(self):
        ckt = small_circuit()
        ckt.remove("r2")
        assert "r2" not in ckt
        with pytest.raises(NetlistError):
            ckt.remove("r2")

    def test_replace(self):
        ckt = small_circuit()
        ckt.replace(Resistor("r1", "in", "out", 2e3))
        assert ckt["r1"].resistance == 2e3
        with pytest.raises(NetlistError):
            ckt.replace(Resistor("zzz", "in", "out", 1.0))

    def test_nets_and_non_ground(self):
        ckt = small_circuit()
        assert set(ckt.nets()) == {"in", "out", "gnd"}
        assert ckt.non_ground_nets() == ["in", "out"]

    def test_elements_of(self):
        ckt = small_circuit()
        assert len(ckt.elements_of(Resistor)) == 2
        assert len(ckt.elements_of(VoltageSource)) == 1
        assert ckt.elements_of(Capacitor) == []

    def test_connectivity(self):
        table = small_circuit().connectivity()
        assert sorted(table["out"]) == ["r1", "r2"]

    def test_validate_passes_on_good_circuit(self):
        small_circuit().validate()

    def test_validate_rejects_empty(self):
        with pytest.raises(NetlistError, match="empty"):
            Circuit("empty").validate()

    def test_validate_rejects_no_ground(self):
        ckt = Circuit("floating")
        ckt.add(Resistor("r1", "a", "b", 1.0))
        with pytest.raises(NetlistError, match="ground"):
            ckt.validate()

    def test_validate_rejects_floating_net(self):
        ckt = small_circuit()
        ckt.add(Capacitor("cstub", "out", "dangling", 1e-12))
        with pytest.raises(NetlistError, match="floating"):
            ckt.validate()


class TestElements:
    def test_negative_resistance_rejected(self):
        with pytest.raises(NetlistError):
            Resistor("r", "a", "b", -5.0)

    def test_zero_capacitance_rejected(self):
        with pytest.raises(NetlistError):
            Capacitor("c", "a", "b", 0.0)

    def test_empty_name_rejected(self):
        with pytest.raises(NetlistError):
            Resistor("", "a", "b", 1.0)

    def test_source_waveform(self):
        src = VoltageSource("v", "a", "gnd", dc=1.0, waveform=lambda t: 2.0 * t)
        assert src.value_at(0.5) == 1.0
        static = VoltageSource("v2", "a", "gnd", dc=1.0)
        assert static.value_at(123.0) == 1.0

    def test_current_source_waveform(self):
        src = CurrentSource("i", "a", "gnd", dc=1e-3, waveform=lambda t: 5e-3)
        assert src.value_at(0.0) == 5e-3

    def test_mosfet_validation(self):
        with pytest.raises(NetlistError):
            Mosfet("m", "d", "g", "s", "b", CMOS025.nmos, w=-1e-6, l=1e-6)
        with pytest.raises(NetlistError):
            Mosfet("m", "d", "g", "s", "b", CMOS025.nmos, w=1e-6, l=1e-6, mult=0)

    def test_switch_resistance_states(self):
        sw = Switch("s", "a", "b", phase=lambda t: t < 1.0, r_on=10.0, r_off=1e9)
        assert sw.resistance_at(0.5) == 10.0
        assert sw.resistance_at(2.0) == 1e9

    def test_mosfet_nodes_order(self):
        m = Mosfet("m", "d", "g", "s", "b", CMOS025.nmos, w=1e-6, l=0.25e-6)
        assert m.nodes == ("d", "g", "s", "b")
