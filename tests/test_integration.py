"""Cross-package integration tests: the whole flow hangs together.

These tie the layers to each other: the flow's winning candidate must
convert at resolution in the behavioral simulator; a synthesized opamp must
meet its spec under *independent* re-simulation; and the public API surface
re-exported from ``repro`` must work as documented in the README.
"""

import numpy as np
import pytest

from repro import (
    AdcSpec,
    PipelineCandidate,
    candidate_power,
    enumerate_candidates,
    optimize_topology,
    plan_stages,
)
from repro.behavioral import BehavioralPipeline, enob
from repro.behavioral.signals import full_scale_sine


class TestPublicApi:
    def test_readme_quickstart(self):
        result = optimize_topology(AdcSpec(resolution_bits=13, sample_rate_hz=40e6))
        assert result.best.label == "4-3-2"
        table = result.power_table()
        assert table[0][0] == "4-3-2"

    def test_version(self):
        import repro

        assert repro.__version__


class TestFlowToBehavioral:
    @pytest.mark.parametrize("k", [10, 11, 12, 13])
    def test_winner_converts_at_resolution(self, k):
        best = optimize_topology(AdcSpec(resolution_bits=k)).best
        pipeline = BehavioralPipeline(best.candidate)
        signal = full_scale_sine(2048, 479, 2.0)
        measured = enob(pipeline.convert_array(signal), 479)
        assert measured > k - 0.5


class TestSynthesisToSimulation:
    def test_synthesized_block_verified_independently(self):
        """Re-simulate a synthesized opamp outside the synthesis harness."""
        from repro.analysis import simulate_transient
        from repro.blocks.mdac import MdacNetwork, build_settling_bench
        from repro.blocks.opamp_library import build_two_stage_miller
        from repro.synth import synthesize_mdac
        from repro.tech import CMOS025

        plan = plan_stages(
            AdcSpec(resolution_bits=13), PipelineCandidate((4, 3, 2), 13, 7)
        )
        mdac = plan.mdacs[2]
        result = synthesize_mdac(mdac, CMOS025, budget=200, seed=9)
        assert result.feasible

        network = MdacNetwork.from_spec(mdac)
        amp = build_two_stage_miller(CMOS025, result.final.sizing)
        step = -(mdac.output_swing / 4.0) / (network.cs / network.cf)
        bench, ideal = build_settling_bench(
            amp, network, CMOS025, step_voltage=step, common_mode=0.45 * CMOS025.vdd
        )
        t_settle = mdac.linear_settling_time + mdac.slew_time
        trace = simulate_transient(
            bench, t_stop=1e-9 + t_settle, dt=t_settle / 800, record=["out"]
        )
        v = trace.voltage("out")
        start = float(v[np.searchsorted(trace.time, 1e-9) - 1])
        error = abs((float(v[-1]) - start) - ideal) / abs(ideal)
        # Independent re-check (finer timestep than the evaluator's).
        assert error < 2.0 * mdac.settling_error


class TestSpecPowerConsistency:
    def test_analytic_power_uses_the_same_plan(self):
        spec = AdcSpec(resolution_bits=13)
        cand = next(c for c in enumerate_candidates(13) if c.label == "4-3-2")
        plan = plan_stages(spec, cand)
        via_plan = candidate_power(spec, cand, plan=plan).total_power
        direct = candidate_power(spec, cand).total_power
        assert via_plan == pytest.approx(direct)
