"""Service benchmark: submission latency, coalescing hit rate, throughput.

Three claims, measured against a live in-process server
(:class:`repro.service.BackgroundServer`):

* **Coalescing** — N identical *concurrent* synthesis submissions
  collapse onto one job: one scheduler execution, exactly **one cold
  synthesis**, an (N-1)/N coalescing hit rate, and byte-identical
  artifacts for every client.  This is the service-level analogue of the
  campaign ledger's block reuse — whole requests dedup, not just blocks.
* **Submission latency** — a ``POST /jobs`` round-trip is milliseconds:
  admission is a digest + a queue insert, never a computation.
* **Sustained throughput** — a stream of distinct analytic campaign jobs
  clears at multiple jobs/second end to end (submit -> schedule ->
  execute -> persist results).

Runs standalone through ``benchmarks/run_all.py`` (the ``service`` stage,
asserted by ``--check``) and as a pytest-benchmark case::

    PYTHONPATH=src python -m pytest benchmarks/bench_service.py -q
"""

from __future__ import annotations

import json
import statistics
import tempfile
import threading
import time

#: Identical concurrent submissions for the coalescing measurement.
IDENTICAL = 8

#: Distinct analytic jobs for the latency/throughput measurement.
DISTINCT = 16

#: The coalescing workload: a small synthesis campaign (one scenario, one
#: cold synthesis at this budget — see the assertion below).
SYNTH_JOB = {
    "kind": "campaign",
    "grid": {"resolutions": [10], "modes": ["synthesis"]},
    "config": {"budget": 80, "retarget_budget": 30, "verify_transient": False},
}


def _direct_reference() -> bytes:
    """``results.jsonl`` bytes of a *direct* run of the coalescing grid.

    The service's served artifact must equal this byte-for-byte — the
    end-to-end identity contract, not just internal read stability.
    """
    import tempfile
    from pathlib import Path

    from repro.campaign import run_campaign
    from repro.service.jobs import build_config, build_grid

    with tempfile.TemporaryDirectory(prefix="repro-bench-direct-") as out:
        run_campaign(
            build_grid(SYNTH_JOB["grid"]),
            build_config(SYNTH_JOB["config"]),
            store_dir=out,
        )
        return (Path(out) / "results.jsonl").read_bytes()


def _distinct_job(index: int) -> dict:
    """A cheap analytic campaign job unique to ``index``."""
    return {
        "kind": "campaign",
        "grid": {"resolutions": [10, 11], "sample_rates_hz": [(20 + index) * 1e6]},
        "client": f"bench-{index % 4}",
    }


def run_service_benchmark(
    identical: int = IDENTICAL, distinct: int = DISTINCT
) -> dict:
    """Measure the three claims against a fresh background server."""
    from repro.service import BackgroundServer, ServiceClient

    with tempfile.TemporaryDirectory(prefix="repro-bench-svc-") as root:
        with BackgroundServer(store_dir=root, job_workers=2) as server:
            client = ServiceClient(server.base_url)

            # -- coalescing: N identical concurrent synthesis submissions --
            ids: list[str] = []
            lock = threading.Lock()

            def submit_identical() -> None:
                job_id = client.submit(SYNTH_JOB)["job"]["id"]
                with lock:
                    ids.append(job_id)

            threads = [
                threading.Thread(target=submit_identical)
                for _ in range(identical)
            ]
            start = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            client.wait(ids[0], timeout=600)
            synth_wall = time.perf_counter() - start
            stats = client.stats()
            served = client.artifact(ids[0], "results.jsonl")
            record = json.loads(served)
            coalescing = {
                "submissions": identical,
                "unique_jobs": len(set(ids)),
                "executions": stats["executions"],
                "cold_synthesis_runs": record["cold_runs"],
                "hit_rate": round(stats["coalesced"] / stats["submissions"], 3),
                "byte_identical_to_direct": served == _direct_reference(),
                "wall_s": round(synth_wall, 3),
            }

            # -- latency + sustained throughput on distinct analytic jobs --
            latencies: list[float] = []
            job_ids: list[str] = []
            start = time.perf_counter()
            for index in range(distinct):
                tick = time.perf_counter()
                job_ids.append(client.submit(_distinct_job(index))["job"]["id"])
                latencies.append(time.perf_counter() - tick)
            for job_id in job_ids:
                client.wait(job_id, timeout=600)
            wall = time.perf_counter() - start

        return {
            "coalescing": coalescing,
            "submission_latency_ms": {
                "median": round(statistics.median(latencies) * 1e3, 2),
                "p_max": round(max(latencies) * 1e3, 2),
            },
            "throughput": {
                "jobs": distinct,
                "wall_s": round(wall, 3),
                "jobs_per_s": round(distinct / wall, 1),
            },
        }


def check_service_report(report: dict) -> list[str]:
    """The ``run_all.py --check`` assertions; returns failure strings."""
    failures: list[str] = []
    coalescing = report["coalescing"]
    if coalescing["unique_jobs"] != 1:
        failures.append(
            f"{coalescing['submissions']} identical submissions produced "
            f"{coalescing['unique_jobs']} jobs (want 1)"
        )
    if coalescing["executions"] != 1:
        failures.append(
            f"coalesced job executed {coalescing['executions']} times (want 1)"
        )
    if coalescing["cold_synthesis_runs"] != 1:
        failures.append(
            "coalesced job performed "
            f"{coalescing['cold_synthesis_runs']} cold syntheses (want exactly 1)"
        )
    if not coalescing["byte_identical_to_direct"]:
        failures.append(
            "served results.jsonl differs from a direct run_campaign store"
        )
    return failures


def test_service_benchmark(once):
    report = once(run_service_benchmark)

    print()
    coalescing = report["coalescing"]
    latency = report["submission_latency_ms"]
    throughput = report["throughput"]
    print(
        f"Service benchmark — {coalescing['submissions']} identical + "
        f"{throughput['jobs']} distinct jobs"
    )
    print(
        f"  coalescing:  {coalescing['submissions']} submissions -> "
        f"{coalescing['unique_jobs']} job, {coalescing['executions']} execution, "
        f"{coalescing['cold_synthesis_runs']} cold synthesis "
        f"(hit rate {coalescing['hit_rate']:.0%}, {coalescing['wall_s']} s)"
    )
    print(
        f"  latency:     median {latency['median']} ms / "
        f"max {latency['p_max']} ms per submission"
    )
    print(
        f"  throughput:  {throughput['jobs']} jobs in {throughput['wall_s']} s "
        f"({throughput['jobs_per_s']} jobs/s)"
    )

    assert check_service_report(report) == []
    expected_rate = (coalescing["submissions"] - 1) / coalescing["submissions"]
    assert coalescing["hit_rate"] == round(expected_rate, 3)
    assert throughput["jobs_per_s"] > 1.0
