"""Section 4 claim: a small library of MDACs covers every 13-bit candidate.

The paper synthesized eleven MDACs for the seven 13-bit configurations; our
exact (m, input-accuracy) bookkeeping yields 12 distinct specs.  This bench
verifies the reuse arithmetic without running synthesis.
"""

from repro.enumeration import enumerate_candidates
from repro.specs import AdcSpec, plan_stages


def count_unique_blocks(resolution_bits: int = 13) -> tuple[int, int]:
    spec = AdcSpec(resolution_bits=resolution_bits)
    keys: set[tuple[int, int]] = set()
    total = 0
    for cand in enumerate_candidates(resolution_bits):
        plan = plan_stages(spec, cand)
        for mdac in plan.mdacs:
            keys.add(mdac.reuse_key)
            total += 1
    return len(keys), total


def test_block_reuse(benchmark):
    unique, total = benchmark(count_unique_blocks)
    print(f"\n13-bit candidates need {total} stage instances, "
          f"{unique} unique MDAC specs (paper: 11)")
    assert unique == 12
    assert total == 27  # 2+3+4+3+4+5+6 stage instances across the 7 candidates
    # Reuse saves half the synthesis effort.
    assert unique <= total / 2
