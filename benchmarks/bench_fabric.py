"""Fabric benchmark: lease overhead, fleet throughput scaling, reclaim time.

Three claims, measured against a live in-process server
(:class:`repro.service.BackgroundServer`) and real ``repro-adc worker``
subprocesses — the same deployment shape as a two-terminal quickstart:

* **Lease overhead** — one task's full broker round trip (submit ->
  lease -> heartbeat -> ack -> result) over HTTP is milliseconds: the
  fabric taxes each task with protocol chatter, not computation.
* **Throughput scales with the fleet** — a batch of fixed-service-time
  probe tasks (:func:`repro.engine.worker.fabric_probe`) dispatched
  through ``BACKENDS['broker']`` clears at least 1.5x faster with 2
  workers than with 1 (the ``--check`` floor; ideal is 2x, the gap is
  lease/poll overhead).  The probe's service time is a sleep, so the
  measurement captures the fabric's dispatch concurrency rather than
  the host's core count — a one-core CI runner still shows fleet
  scaling, exactly as two workers on two hosts overlap real syntheses.
  Separately, a fleet of 2 workers runs real synthesis jobs and must
  reproduce the sizing digests of a local serial run bit-for-bit.
* **Reclaim is bounded by the TTL** — SIGKILL a worker holding a lease
  and the task is re-leasable within a small multiple of the server's
  lease TTL (no heartbeats arrive, so expiry is the only signal).

Runs standalone through ``benchmarks/run_all.py`` (the ``fabric`` stage,
asserted by ``--check``)::

    PYTHONPATH=src python benchmarks/run_all.py --smoke --check
"""

from __future__ import annotations

import os
import statistics
import subprocess
import sys
import tempfile
import time
from pathlib import Path

#: The server's lease TTL for the benchmark: small enough that the
#: reclaim-after-SIGKILL measurement finishes in seconds, large enough
#: that a healthy worker's heartbeats (TTL/3 cadence) never race it.
LEASE_TTL = 2.0

#: Trivial round trips for the lease-overhead measurement.
OVERHEAD_TRIPS = 15


def _repo_src() -> str:
    import repro

    return str(Path(repro.__file__).resolve().parents[1])


def _spawn_worker(base_url: str) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "worker",
            "--broker",
            base_url,
            "--poll",
            "0.02",
            "--ttl",
            str(LEASE_TTL),
        ],
        env={**os.environ, "PYTHONPATH": _repo_src()},
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _stop_workers(workers: list[subprocess.Popen]) -> None:
    for proc in workers:
        if proc.poll() is None:
            proc.terminate()
    for proc in workers:
        try:
            proc.wait(timeout=20)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()


def _probe_tasks(count: int, busy_s: float, phase: str) -> list[dict]:
    """``count`` distinct probe tasks holding a worker for ``busy_s``."""
    return [
        {"phase": phase, "index": i, "busy_s": busy_s} for i in range(count)
    ]


def _synthesis_jobs(count: int, budget: int, seed_base: int) -> list:
    """``count`` distinct-seed synthesis jobs on one 10-bit MDAC spec."""
    from repro.engine.scheduler import SynthesisJob
    from repro.enumeration.candidates import enumerate_candidates
    from repro.specs import AdcSpec, plan_stages
    from repro.tech import CMOS025

    spec = AdcSpec(resolution_bits=10)
    plan = plan_stages(spec, enumerate_candidates(10)[0])
    return [
        SynthesisJob(
            spec=plan.mdacs[0],
            tech=CMOS025,
            budget=budget,
            seed=seed_base + i,
            verify_transient=False,
        )
        for i in range(count)
    ]


def _measure_fleet(base_url: str, tasks: int, busy_s: float, workers: int) -> float:
    """Wall seconds for N warm workers to clear ``tasks`` probe tasks."""
    from repro.engine.broker import BrokerBackend
    from repro.engine.worker import fabric_probe

    procs = [_spawn_worker(base_url) for _ in range(workers)]
    try:
        backend = BrokerBackend(broker_url=base_url, poll_interval=0.02)
        # Warm up: one probe per worker (distinct phase tag, so nothing
        # replays into the measurement) so worker process start-up never
        # lands inside the measured window.
        backend.map(
            fabric_probe, _probe_tasks(workers, busy_s, f"warmup-{workers}")
        )
        start = time.perf_counter()
        backend.map(fabric_probe, _probe_tasks(tasks, busy_s, f"measure-{workers}"))
        return time.perf_counter() - start
    finally:
        _stop_workers(procs)


def _fleet_identity(base_url: str, jobs: list) -> bool:
    """2 workers run real synthesis jobs; digests must match a local run."""
    from repro.engine.broker import BrokerBackend
    from repro.engine.persist import sizing_digest
    from repro.engine.scheduler import run_synthesis_job

    procs = [_spawn_worker(base_url) for _ in range(2)]
    try:
        backend = BrokerBackend(broker_url=base_url, poll_interval=0.02)
        fleet = backend.map(run_synthesis_job, jobs)
    finally:
        _stop_workers(procs)
    local = [run_synthesis_job(job) for job in jobs]
    return [sizing_digest(r) for r in fleet] == [
        sizing_digest(r) for r in local
    ]


def _lease_overhead(base_url: str, trips: int) -> dict:
    """Median/max ms of one full task round trip over the HTTP broker."""
    from repro.engine.broker import HttpBroker
    from repro.engine.persist import digest
    from repro.engine.workqueue import task_key
    from repro.service import wire

    broker = HttpBroker(base_url)
    walls = []
    for i in range(trips):
        task = {"overhead-trip": i}
        key = task_key(digest, task)
        tick = time.perf_counter()
        broker.submit(key, wire.encode_task(digest, task))
        leased = broker.lease("bench-overhead")
        assert leased is not None and leased[0] == key
        assert broker.heartbeat(key, "bench-overhead")
        broker.ack(key, wire.encode_result(digest(task)), "bench-overhead")
        assert broker.result(key) is not None
        walls.append(time.perf_counter() - tick)
    return {
        "trips": trips,
        "median_ms": round(statistics.median(walls) * 1e3, 2),
        "max_ms": round(max(walls) * 1e3, 2),
    }


def _reclaim_after_sigkill(base_url: str) -> dict:
    """Seconds from SIGKILLing a lease-holding worker to re-leasability."""
    from repro.engine.broker import HttpBroker
    from repro.engine.persist import digest
    from repro.engine.workqueue import task_key
    from repro.service import wire

    broker = HttpBroker(base_url)
    task = {"reclaim-probe": 1}
    key = task_key(digest, task)
    broker.submit(key, wire.encode_task(digest, task))
    victim = subprocess.Popen(
        [
            sys.executable,
            "-c",
            "import time\n"
            "from repro.engine.broker import HttpBroker\n"
            f"b = HttpBroker({base_url!r})\n"
            "assert b.lease('victim') is not None\n"
            "print('leased', flush=True)\n"
            "time.sleep(600)\n",
        ],
        stdout=subprocess.PIPE,
        env={**os.environ, "PYTHONPATH": _repo_src()},
    )
    try:
        assert victim.stdout.readline().strip() == b"leased"
        victim.kill()
        victim.wait()
        start = time.perf_counter()
        deadline = start + LEASE_TTL * 5
        leased = None
        while leased is None and time.perf_counter() < deadline:
            leased = broker.lease("survivor")
            if leased is None:
                time.sleep(0.05)
        wall = time.perf_counter() - start
        reclaimed = leased is not None and leased[0] == key
        if reclaimed:
            broker.ack(key, wire.encode_result(digest(task)), "survivor")
        return {
            "lease_ttl_s": LEASE_TTL,
            "reclaimed": reclaimed,
            "seconds_to_reclaim": round(wall, 3),
        }
    finally:
        victim.kill()
        victim.wait()


def run_fabric_benchmark(
    tasks: int = 8,
    busy_s: float = 0.25,
    identity_jobs: int = 4,
    budget: int = 60,
) -> dict:
    """Measure the three fabric claims against a fresh background server."""
    from repro.service import BackgroundServer

    with tempfile.TemporaryDirectory(prefix="repro-bench-fabric-") as root:
        with BackgroundServer(store_dir=root, lease_ttl=LEASE_TTL) as server:
            overhead = _lease_overhead(server.base_url, OVERHEAD_TRIPS)
            wall_one = _measure_fleet(server.base_url, tasks, busy_s, workers=1)
            wall_two = _measure_fleet(server.base_url, tasks, busy_s, workers=2)
            identical = _fleet_identity(
                server.base_url,
                _synthesis_jobs(identity_jobs, budget, seed_base=100),
            )
            reclaim = _reclaim_after_sigkill(server.base_url)

        return {
            "lease_overhead": overhead,
            "throughput": {
                "tasks": tasks,
                "task_service_s": busy_s,
                "one_worker": {
                    "wall_s": round(wall_one, 3),
                    "tasks_per_s": round(tasks / wall_one, 2),
                },
                "two_workers": {
                    "wall_s": round(wall_two, 3),
                    "tasks_per_s": round(tasks / wall_two, 2),
                },
                "speedup_two_vs_one": round(wall_one / wall_two, 2),
            },
            "identity": {
                "synthesis_jobs": identity_jobs,
                "budget": budget,
                "identical_to_local": identical,
            },
            "reclaim": reclaim,
        }


def check_fabric_report(report: dict) -> list[str]:
    """``--check`` failures for the fabric stage (empty list = pass)."""
    failures = []
    speedup = report["throughput"]["speedup_two_vs_one"]
    if speedup < 1.5:
        failures.append(
            "regression: 2-worker fleet under its 1.5x throughput floor "
            f"vs 1 worker ({speedup}x)"
        )
    if not report["identity"]["identical_to_local"]:
        failures.append(
            "fleet synthesis results diverged from the local serial run "
            "(sizing digests differ)"
        )
    if not report["reclaim"]["reclaimed"]:
        failures.append(
            "a SIGKILLed worker's lease was never reclaimed "
            f"(waited {report['reclaim']['seconds_to_reclaim']}s)"
        )
    elif report["reclaim"]["seconds_to_reclaim"] > LEASE_TTL * 3:
        failures.append(
            "reclaim after SIGKILL took "
            f"{report['reclaim']['seconds_to_reclaim']}s "
            f"(> 3x the {LEASE_TTL}s lease TTL)"
        )
    return failures


if __name__ == "__main__":
    import json

    print(json.dumps(run_fabric_benchmark(), indent=2))
