"""Campaign benchmark: batched grid execution vs a naive per-spec loop.

The workload is a six-scenario synthesis sweep (K = 9, 10, 11 at 30 and
40 MSPS) run two ways:

* ``naive``   — the pre-campaign pattern: one independent
  ``optimize_topology`` call per grid point, each with its own fresh block
  cache, so every resolution pays its own cold synthesis;
* ``batched`` — ``run_campaign`` over the same grid: one backend, one
  synthesis ledger and one warm-start donor pool shared across scenarios,
  so only the first scenario synthesizes cold and every later block
  retargets from the campaign pool (cold budget 800 vs retarget budget
  120).

Both paths must evaluate the same candidates and converge on feasible
designs (identical *rankings* are guaranteed across backends for a fixed
plan — see ``tests/campaign/test_determinism.py`` — not between different
warm-start histories: a warm start changes the search path, so near-tie
candidates may swap places while every block still meets its spec).  The
batched run must eliminate all but one cold synthesis, beat the naive loop
on the clock, and a ledger-chained rerun must hit the cache for every
block.
"""

import time

from repro.campaign import CampaignGrid, SynthesisLedger, run_campaign
from repro.engine.config import FlowConfig
from repro.flow.topology import optimize_topology

#: A heavy cold budget against a lean retarget budget — the contrast
#: cross-scenario warm starts exploit.  At these resolutions 120 retarget
#: evaluations reliably carry an adjacent-scenario donor to feasibility,
#: so escalations stay rare and the eliminated cold syntheses dominate.
BUDGET = 800
RETARGET_BUDGET = 120

GRID = CampaignGrid(
    resolutions=(9, 10, 11),
    sample_rates_hz=(30e6, 40e6),
    modes=("synthesis",),
)


def _config() -> FlowConfig:
    return FlowConfig(
        budget=BUDGET, retarget_budget=RETARGET_BUDGET, verify_transient=False
    )


def _run_naive():
    """One fresh optimize_topology per scenario — no sharing anywhere."""
    outcomes = []
    for scenario in GRID.expand():
        cache = _config().make_cache(scenario.spec.tech)
        result = optimize_topology(
            scenario.spec, mode="synthesis", cache=cache, config=_config()
        )
        outcomes.append((scenario.label, result, cache))
    return outcomes


def test_campaign_batching(once):
    start = time.perf_counter()
    naive = _run_naive()
    naive_s = time.perf_counter() - start

    ledger = SynthesisLedger()
    start = time.perf_counter()
    campaign = run_campaign(GRID, config=_config(), ledger=ledger)
    batched_s = time.perf_counter() - start

    # Ledger-chained rerun: every block is a campaign-cache hit.
    start = time.perf_counter()
    rerun = run_campaign(GRID, config=_config(), ledger=ledger)
    rerun_s = time.perf_counter() - start

    naive_colds = sum(cache.cold_runs for _, _, cache in naive)
    naive_searches = sum(cache.synthesis_runs for _, _, cache in naive)
    batched_colds = sum(r.cold_runs for r in campaign.records)
    batched_pool = sum(r.pool_warm_starts for r in campaign.records)
    batched_escalated = sum(r.pool_escalations for r in campaign.records)
    batched_blocks = sum(r.unique_blocks for r in campaign.records)
    rerun_hits = sum(r.shared_hits for r in rerun.records)
    rerun_blocks = sum(r.unique_blocks for r in rerun.records)
    hit_rate = rerun_hits / rerun_blocks

    print()
    print(f"Campaign benchmark — {GRID.size} scenarios, {batched_blocks} blocks")
    print(f"  naive loop:  {naive_s:7.2f} s   ({naive_colds} cold / {naive_searches} searches)")
    print(
        f"  batched:     {batched_s:7.2f} s   ({batched_colds} cold, "
        f"{batched_pool} cross-scenario warm starts, "
        f"{batched_escalated} escalated; {naive_s / batched_s:.2f}x vs naive)"
    )
    print(
        f"  rerun:       {rerun_s:7.3f} s   (cache hit rate {hit_rate:.0%}; "
        f"{naive_s / max(rerun_s, 1e-9):.0f}x vs naive)"
    )

    # Same candidates scenario by scenario, and never fewer feasible
    # designs than the naive loop.  (Rankings are backend-deterministic for
    # a fixed plan; a different warm-start history is a different plan, so
    # near-ties may legitimately reorder.  Distant in-plan retargets can be
    # infeasible at these budgets — identically so in both code paths.)
    for (label, result, _), scenario_result in zip(naive, campaign.scenarios):
        record = scenario_result.record
        assert label == record.label
        assert sorted(e.label for e in result.evaluations) == sorted(
            lbl for lbl, _ in record.rankings
        )
        naive_feasible = sum(e.all_feasible for e in result.evaluations)
        batched_feasible = sum(
            e.all_feasible for e in scenario_result.topology.evaluations
        )
        assert batched_feasible >= naive_feasible

    # The batch eliminates all but the first cold synthesis: every other
    # scenario's blocks warm-start from the campaign pool.  A warm start
    # that misses feasibility escalates back to cold (and is counted in
    # cold_runs), so feasibility never regresses vs the naive loop.
    assert naive_colds == GRID.size
    assert batched_colds == 1 + batched_escalated
    assert batched_pool > 0

    # That economy shows up on the clock, and the chained rerun is
    # all cache hits — near-free.
    assert batched_s < naive_s
    assert hit_rate == 1.0
    assert rerun_s < 0.2 * naive_s

    once(run_campaign, GRID, config=_config())
