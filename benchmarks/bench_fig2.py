"""Fig. 2 benchmark: total front-end power for every candidate, K = 10..13.

Prints the paper's bars and asserts its four optima plus the 2-bit
last-stage rule.
"""

from repro.experiments.fig2 import PAPER_OPTIMA, fig2_total_power, format_fig2


def test_fig2_total_power(once):
    result = once(fig2_total_power)
    print()
    print(format_fig2(result))
    assert result.matches_paper, f"winners {result.winners} != paper {PAPER_OPTIMA}"
    for k, topo in result.by_resolution.items():
        assert topo.best.candidate.resolutions[-1] == 2, f"K={k} last stage not 2-bit"


def test_fig2_power_grows_with_resolution(once):
    result = once(fig2_total_power)
    totals = [r.best.total_power for _, r in sorted(result.by_resolution.items())]
    assert all(a < b for a, b in zip(totals, totals[1:]))
