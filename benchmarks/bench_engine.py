"""Execution-engine benchmark: serial vs process-pool vs warm persistent cache.

The workload is the paper's headline job — synthesize every block the seven
13-bit candidates need (27 stage instances, 12 unique MDACs) and rank the
candidates.  Three configurations run back to back:

* ``serial``  — wave scheduler on the in-process backend (cold);
* ``process`` — same plan dispatched through the process pool (cold);
* ``warm``    — serial again, but against the persistent block cache the
  first run populated: every block loads by content fingerprint, so the
  run reduces to cache reads plus analytic assembly.

Rankings must agree bit-for-bit across all three (the scheduler fixes every
warm start before dispatch), the warm run must be near-free, and — when the
machine actually has more than one core — the pool must beat serial.
"""

import os
import time

from repro.engine.config import FlowConfig
from repro.flow.topology import optimize_topology
from repro.specs.adc import AdcSpec

#: Reduced budgets keep the bench minutes-not-hours while still giving the
#: pool coarse enough tasks to amortize dispatch.
BUDGET = 200
RETARGET_BUDGET = 60


def _run(config: FlowConfig):
    spec = AdcSpec(resolution_bits=13)
    start = time.perf_counter()
    result = optimize_topology(spec, mode="synthesis", config=config)
    return result, time.perf_counter() - start


def _config(**overrides) -> FlowConfig:
    base = dict(budget=BUDGET, retarget_budget=RETARGET_BUDGET, verify_transient=False)
    base.update(overrides)
    return FlowConfig(**base)


def test_engine_backends(once, tmp_path):
    cache_dir = str(tmp_path / "blocks")

    serial, serial_s = _run(_config(cache_dir=cache_dir))
    process, process_s = _run(_config(backend="process"))
    warm, warm_s = _run(_config(cache_dir=cache_dir))

    cores = os.cpu_count() or 1
    print()
    print(f"Engine benchmark — 13-bit, 7 candidates, {serial.unique_blocks} unique blocks, {cores} cores")
    print(f"  serial (cold):   {serial_s:7.2f} s")
    print(f"  process (cold):  {process_s:7.2f} s   ({serial_s / process_s:.2f}x vs serial)")
    print(f"  serial (warm):   {warm_s:7.3f} s   ({serial_s / max(warm_s, 1e-9):.0f}x vs serial)")

    # Backend-independence: identical rankings and block counts everywhere.
    assert serial.power_table() == process.power_table() == warm.power_table()
    assert serial.unique_blocks == process.unique_blocks == warm.unique_blocks == 12

    # The warm run skips every search: near-zero cost.
    assert warm_s < 0.2 * serial_s

    # The pool only wins when hardware parallelism exists; single-core boxes
    # (CI containers) just must not regress pathologically.
    if cores > 1:
        assert process_s < serial_s
    else:
        assert process_s < 2.0 * serial_s

    # Record the serial run for pytest-benchmark's table.
    once(_run, _config())
