"""Fig. 1 benchmark: per-stage power of the seven 13-bit candidates.

Two modes are exercised:

* analytic (fast screen) — asserts the full ordering story;
* transistor-level synthesis with block reuse — the paper's actual Fig. 1
  flow; asserts stage-1 flatness and that 4-3-2 lands on top of the
  aggressive family (softer assertions because the annealer is stochastic).
"""

import pytest

from repro.experiments.fig1 import fig1_stage_powers, format_fig1
from repro.flow.cache import BlockCache
from repro.tech import CMOS025


def test_fig1_analytic(once):
    result = once(fig1_stage_powers, mode="analytic")
    print()
    print(format_fig1(result))
    # The paper's observation: first-stage power nearly independent of m1.
    assert result.stage1_spread_excluding("2-2-2-2-2-2") < 1.5
    assert result.stage1_spread < 2.5
    # 4-3-2 is the least-power 13-bit configuration.
    assert result.topology.best.label == "4-3-2"
    # Stage powers decrease monotonically along every pipeline.
    for label, series in result.series.items():
        assert all(a >= b for a, b in zip(series, series[1:])), label


@pytest.mark.slow
def test_fig1_synthesis(once):
    cache = BlockCache(CMOS025, budget=300, retarget_budget=80, seed=3)
    result = once(fig1_stage_powers, mode="synthesis", cache=cache)
    print()
    print(format_fig1(result))
    print(
        f"blocks: {cache.unique_blocks} unique "
        f"({cache.cold_runs} cold + {cache.retargeted_runs} retargeted, "
        f"{cache.cache_hits} cache hits)"
    )
    # Block reuse: ~a dozen MDACs cover all seven candidates (paper: 11).
    assert cache.unique_blocks <= 13
    assert cache.cache_hits > 0
    # Stage-1 power stays within a modest spread across candidates.
    assert result.stage1_spread_excluding("2-2-2-2-2-2") < 2.0
    # The synthesized ranking keeps 4-3-2 in the leading group.
    ranked = [e.label for e in result.topology.evaluations]
    assert "4-3-2" in ranked[:3]
