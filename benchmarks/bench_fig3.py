"""Fig. 3 benchmark: the designer decision rules extracted from the sweep."""

from repro.experiments.fig3 import fig3_designer_rules, format_fig3


def test_fig3_rules(once):
    result = once(fig3_designer_rules)
    print()
    print(format_fig3(result))
    # The paper's bands: 3-bit first stage at 9-10 bits, 4-bit at >= 11.
    assert result.winners[10].startswith("3")
    assert result.winners[11].startswith("4")
    assert result.winners[12].startswith("4")
    assert result.winners[13].startswith("4")
    assert result.last_stage_always_2bit
    # The bands compress into at most three rules over 9..14 bits.
    assert len(result.rules) <= 3
