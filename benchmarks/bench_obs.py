"""Observability overhead benchmark: telemetry must be near-free.

The contract the unified observability layer ships with: `metrics` mode
(the default) may not tax the hot evaluation path, and `trace` mode's
span export stays cheap enough for production use.  The workload is the
48-candidate DC staging pass from the ``dc_batch`` stage — the hottest
instrumented loop in the repo (every Newton iteration bumps registry
counters through the ``NEWTON_STATS`` view) — wrapped in one span per
pass, exactly as the scheduler wraps each synthesis job.

Three timed configurations, best-of-N walls:

* ``off``     — gated helpers are no-ops, tracer disabled;
* ``metrics`` — the shipping default: registry counters live;
* ``trace``   — metrics plus JSONL span export to a sink directory.

A registry micro-rate (plain ``REGISTRY.counter`` calls per second) is
reported alongside so the per-event cost is visible in absolute terms.

Runs standalone through ``benchmarks/run_all.py`` (the ``obs`` stage):
``--check`` fails the run when metrics-mode overhead exceeds 3% of the
off-mode wall (the acceptance floor), when trace mode recorded no spans,
or when trace overhead exceeds a looser 15% sanity bound.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import numpy as np

from repro.obs import metrics
from repro.obs.trace import configure_tracing, span
from repro.specs import AdcSpec, plan_stages
from repro.enumeration.candidates import PipelineCandidate
from repro.synth import HybridEvaluator, two_stage_space
from repro.tech.process import CMOS025


def _workload(population: int):
    spec = AdcSpec(resolution_bits=13)
    plan = plan_stages(spec, PipelineCandidate((4, 3, 2), 13, 7))
    mdac = plan.mdacs[2]
    space = two_stage_space(mdac, CMOS025)
    rng = np.random.default_rng(17)
    sizings = [space.decode(rng.random(space.dimension)) for _ in range(population)]
    evaluator = HybridEvaluator(mdac, CMOS025, kernel="compiled", dc_kernel="batched")
    return evaluator, sizings


def _interleaved_walls(fn, modes, configure, repeats: int) -> dict[str, float]:
    """Best wall per mode, measured round-robin.

    The per-pass walls are tens of milliseconds, so sequential per-mode
    blocks would fold clock/thermal drift into the overhead percentages;
    interleaving the modes samples each against the same drift.
    """
    walls: dict[str, list[float]] = {mode: [] for mode in modes}
    for mode in modes:
        configure(mode)
        fn()  # warm layout/template caches and the trace sink per mode
    for _ in range(repeats):
        for mode in modes:
            configure(mode)
            start = time.perf_counter()
            for _ in range(_INNER_LOOPS):
                fn()
            walls[mode].append((time.perf_counter() - start) / _INNER_LOOPS)
    return {mode: min(samples) for mode, samples in walls.items()}


#: Passes per timed sample — one pass is ~30 ms, too small for a stable
#: percentage; four amortize scheduler jitter without hiding the overhead.
_INNER_LOOPS = 4


def _counter_rate(events: int = 200_000) -> float:
    registry = metrics.MetricsRegistry()
    start = time.perf_counter()
    for _ in range(events):
        registry.counter("bench.micro")
    return events / (time.perf_counter() - start)


def run_obs_benchmark(population: int = 48, repeats: int = 9) -> dict:
    evaluator, sizings = _workload(population)

    def one_pass():
        with span("bench.dc_pass", population=population):
            evaluator._stage_batched(sizings)

    previous_mode = metrics.telemetry_mode()
    spans_written = 0
    try:
        with tempfile.TemporaryDirectory(prefix="bench-obs-") as tmp:
            trace_dir = Path(tmp) / "traces"

            def configure(mode: str) -> None:
                metrics.reset_all(mode)
                configure_tracing(trace_dir if mode == "trace" else None)

            walls = _interleaved_walls(
                one_pass, metrics.TELEMETRY_MODES, configure, repeats
            )
            spans_written = sum(
                len(path.read_text().splitlines())
                for path in trace_dir.glob("*.jsonl")
            )
    finally:
        configure_tracing(None)
        metrics.reset_all(previous_mode)

    def overhead_pct(mode: str) -> float:
        return round((walls[mode] - walls["off"]) / walls["off"] * 100.0, 2)

    return {
        "workload": f"{population}-candidate DC staging pass "
                    f"(batched lockstep), best of {repeats}",
        "wall_off_s": round(walls["off"], 4),
        "wall_metrics_s": round(walls["metrics"], 4),
        "wall_trace_s": round(walls["trace"], 4),
        "overhead_metrics_pct": overhead_pct("metrics"),
        "overhead_trace_pct": overhead_pct("trace"),
        "spans_written": spans_written,
        "counter_rate_per_s": round(_counter_rate(), 0),
    }


def check_obs_report(report: dict) -> list[str]:
    """``--check`` failures for the obs stage (empty list = pass)."""
    failures = []
    if report["overhead_metrics_pct"] > 3.0:
        failures.append(
            "regression: metrics-mode telemetry over its 3% overhead "
            f"floor on the DC workload ({report['overhead_metrics_pct']}%)"
        )
    if report["spans_written"] == 0:
        failures.append("trace mode exported no spans on the DC workload")
    if report["overhead_trace_pct"] > 15.0:
        failures.append(
            "regression: trace-mode telemetry over its 15% sanity bound "
            f"({report['overhead_trace_pct']}%)"
        )
    return failures


if __name__ == "__main__":
    import json

    report = run_obs_benchmark()
    print(json.dumps(report, indent=2))
    problems = check_obs_report(report)
    for problem in problems:
        print(f"CHECK FAILED: {problem}")
    raise SystemExit(1 if problems else 0)
