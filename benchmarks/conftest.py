"""Shared benchmark configuration.

Benchmarks print the same rows/series the paper reports, assert the
qualitative claims, and time the underlying flow via pytest-benchmark.
Heavy synthesis-based benches run a single round.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Time ``fn`` with a single round/iteration (for heavy flows)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    """Fixture form of :func:`run_once`."""

    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _run
