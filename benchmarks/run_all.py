"""Run the standalone benchmark suite and emit ``BENCH_PR10.json``.

Standalone (no pytest): fixed seeds, deterministic workloads, wall-clock
measurements of the compiled evaluation kernels against the legacy path,
plus the optimization-service stage (submission latency, coalescing hit
rate, sustained jobs/s — see ``benchmarks/bench_service.py``).

    PYTHONPATH=src python benchmarks/run_all.py                # full
    PYTHONPATH=src python benchmarks/run_all.py --smoke        # CI smoke
    PYTHONPATH=src python benchmarks/run_all.py --check ...    # exit 1 on
                                                               # regression

The PR 3 stages (``synthesize_mdac`` / ``equation_metric_stage`` /
``evaluate_batch`` / ``service``) carry forward unchanged, as do PR 6's
``corner_tensor`` / ``template_cache``, PR 7's ``behavioral``, and PR 8's
``dc_batch`` with its convergence telemetry and ``speculation`` receipts.
PR 9 adds ``fabric``: the distributed execution fabric measured against a
live HTTP broker and real ``repro-adc worker`` subprocesses — per-task
lease overhead (submit/lease/heartbeat/ack round trip in milliseconds),
fleet throughput at 1 vs 2 workers on fixed-service-time probe tasks
(isolating dispatch concurrency from the runner's core count), sizing
digests of a 2-worker synthesis batch against a local serial run, and
the time for a SIGKILLed worker's lease to be reclaimed
(see ``benchmarks/bench_fabric.py``).  PR 10 adds ``obs``: telemetry
overhead on the 48-candidate DC workload — ``off`` vs ``metrics`` vs
``trace`` walls measured round-robin, plus a registry counter micro-rate
(see ``benchmarks/bench_obs.py``).

``--check`` is the CI regression guard: it fails the run when the compiled
kernel is slower than the legacy path on the same workload, when any
variant's synthesis result diverges (the bit-identity contract), when the
fused corner tensor misses its speedup floor, when a warm template store
still compiles, when the behavioral batch kernel is not bit-identical to
the scalar walk or misses its 5x floor at 256 draws, when the ``dc_batch``
stage misses its 1.5x floor, breaks winner-equivalence or its telemetry
stops accounting for every population member, when either side of the
speculation auto-default contradicts its measurement, when the service
stage breaks its coalescing contract (N identical concurrent submissions
must perform exactly one cold synthesis), or when the ``fabric`` stage
misses its 1.5x two-worker throughput floor, diverges from the local
serial run, or fails to reclaim a SIGKILLed worker's lease within 3x the
lease TTL, or when the ``obs`` stage shows metrics-mode telemetry above
its 3% overhead floor (or trace mode exporting nothing).

A stage that *raises* is recorded in its JSON slot as ``{"error": ...}``
and the run exits non-zero after writing the (partial) report — CI fails
loudly instead of uploading a silently truncated BENCH artifact.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import time
import traceback
from pathlib import Path

import numpy as np

from repro.analysis.ac import ac_system_stack, ac_transfer, solve_ac_stack
from repro.analysis.dcbatch import NEWTON_STATS, reset_newton_stats
from repro.analysis.mna import layout_cache_disabled
from repro.analysis.template import (
    TEMPLATE_STATS,
    _TEMPLATE_CACHE,
    reset_template_stats,
)
from repro.behavioral.batch import simulate_draws
from repro.behavioral.signals import full_scale_sine, pick_coherent_cycles
from repro.behavioral.verify import draw_error_models
from repro.engine.config import FlowConfig
from repro.engine.persist import sizing_digest
from repro.engine.threads import pin_blas_threads
from repro.enumeration.candidates import PipelineCandidate, enumerate_candidates
from repro.specs import AdcSpec, plan_stages
from repro.synth import HybridEvaluator, synthesize_mdac, two_stage_space
from repro.synth.evaluator import _AC_FREQS, CornerSetEvaluator
from repro.tech import CMOS025
from repro.tech.process import CMOS025_SLOW


def _block_spec():
    spec = AdcSpec(resolution_bits=13)
    plan = plan_stages(spec, PipelineCandidate((4, 3, 2), 13, 7))
    return plan.mdacs[2]


def _time_synthesize(kernel: str, budget: int, speculation: int = 0,
                     seed_baseline: bool = False, dc_kernel: str = "chained"):
    mdac = _block_spec()

    def run():
        start = time.perf_counter()
        result = synthesize_mdac(
            mdac,
            CMOS025,
            budget=budget,
            seed=1,
            verify_transient=False,
            kernel=kernel,
            speculation=speculation,
            dc_kernel=dc_kernel,
        )
        return result, time.perf_counter() - start

    if seed_baseline:
        with layout_cache_disabled():
            run()  # warm module/caches
            result, wall = run()
    else:
        run()
        result, wall = run()
    return result, wall


def stage_synthesize(budget: int) -> dict:
    """Full-candidate equation-evaluation throughput per kernel."""
    legacy, legacy_wall = _time_synthesize("legacy", budget, seed_baseline=True)
    compiled_, compiled_wall = _time_synthesize("compiled", budget)
    speculative, spec_wall = _time_synthesize("compiled", budget, speculation=8)
    identical = (
        sizing_digest(legacy) == sizing_digest(compiled_) == sizing_digest(speculative)
        and legacy.history == compiled_.history == speculative.history
        and legacy.equation_evals == compiled_.equation_evals
    )
    evals = compiled_.equation_evals
    return {
        "workload": f"synthesize_mdac(2b@8b, budget={budget}, seed=1, anneal+polish)",
        "equation_evals": evals,
        "legacy_cands_per_s": round(evals / legacy_wall, 1),
        "compiled_cands_per_s": round(evals / compiled_wall, 1),
        "speculative_cands_per_s": round(evals / spec_wall, 1),
        "wall_legacy_s": round(legacy_wall, 3),
        "wall_compiled_s": round(compiled_wall, 3),
        "wall_speculative_s": round(spec_wall, 3),
        "speedup_full_candidate": round(legacy_wall / compiled_wall, 2),
        "identical_results": identical,
    }


def stage_equation_metrics(repeats: int) -> dict:
    """The AC/transfer-function stage: per-frequency loop vs batched stack."""
    mdac = _block_spec()
    space = two_stage_space(mdac, CMOS025)
    evaluator = HybridEvaluator(mdac, CMOS025, kernel="compiled")
    rng = np.random.default_rng(1)
    staged = evaluator._stage_equation(space.decode(rng.random(space.dimension)))
    lin = staged.lin

    def legacy_stage():
        return ac_transfer(lin, "out", _AC_FREQS, batched=False)

    def batched_stage():
        stack = ac_system_stack(lin, _AC_FREQS)
        return solve_ac_stack(stack, lin.b_ac, _AC_FREQS)[:, lin.index("out")]

    identical = bool(np.array_equal(legacy_stage(), batched_stage()))

    def rate(fn):
        fn()
        start = time.perf_counter()
        for _ in range(repeats):
            fn()
        return repeats / (time.perf_counter() - start)

    legacy_rate, batched_rate = rate(legacy_stage), rate(batched_stage)
    return {
        "workload": f"{len(_AC_FREQS)}-point AC sweep of the opamp testbench",
        "legacy_sweeps_per_s": round(legacy_rate, 1),
        "batched_sweeps_per_s": round(batched_rate, 1),
        "speedup": round(batched_rate / legacy_rate, 2),
        "identical_results": identical,
    }


def stage_batch_api(population: int) -> dict:
    """evaluate_batch population scoring vs sequential evaluate."""
    mdac = _block_spec()
    space = two_stage_space(mdac, CMOS025)
    rng = np.random.default_rng(7)
    sizings = [space.decode(rng.random(space.dimension)) for _ in range(population)]

    def run(kernel, batch):
        evaluator = HybridEvaluator(mdac, CMOS025, kernel=kernel)
        evaluator.evaluate(sizings[0])  # warm caches
        evaluator2 = HybridEvaluator(mdac, CMOS025, kernel=kernel)
        start = time.perf_counter()
        if batch:
            results = evaluator2.evaluate_batch(sizings)
        else:
            results = [evaluator2.evaluate(s) for s in sizings]
        return results, time.perf_counter() - start

    sequential, seq_wall = run("legacy", batch=False)
    batched, batch_wall = run("compiled", batch=True)
    identical = all(
        a.cost() == b.cost() and a.violations == b.violations
        for a, b in zip(sequential, batched)
    )
    return {
        "workload": f"population of {population} random candidates",
        "legacy_sequential_cands_per_s": round(population / seq_wall, 1),
        "compiled_batch_cands_per_s": round(population / batch_wall, 1),
        "speedup": round(seq_wall / batch_wall, 2),
        "identical_results": identical,
    }


def _results_match(a, b) -> bool:
    return (
        a.cost() == b.cost()
        and a.violations == b.violations
        and a.power == b.power
    )


def stage_corner_tensor(population: int) -> dict:
    """Fused candidates×corners tensor solve vs per-corner loops.

    Three variants over the same population and corner set:

    * per-corner legacy walk — one ``evaluate`` call per (corner,
      candidate), the PR 2 baseline the acceptance floor is measured
      against;
    * per-corner compiled batches — PR 3's ``evaluate_batch`` once per
      corner (what a caller could already write by hand);
    * fused — one :class:`CornerSetEvaluator.evaluate_batch` staging the
      whole candidates×corners×freq tensor through a single chunked
      ``np.linalg.solve`` stream.
    """
    mdac = _block_spec()
    space = two_stage_space(mdac, CMOS025)
    corners = [CMOS025, CMOS025_SLOW]
    rng = np.random.default_rng(11)
    sizings = [space.decode(rng.random(space.dimension)) for _ in range(population)]

    def percorner_legacy():
        grid = []
        for tech in corners:
            # One evaluator per corner: the sequential walk must keep its
            # DC warm-start chain, like the fused path keeps per corner.
            evaluator = HybridEvaluator(mdac, tech, kernel="legacy")
            grid.append([evaluator.evaluate(s) for s in sizings])
        return grid

    def percorner_batches():
        return [
            HybridEvaluator(mdac, tech, kernel="compiled").evaluate_batch(sizings)
            for tech in corners
        ]

    def fused():
        return CornerSetEvaluator(mdac, corners).evaluate_batch(sizings)

    def timed(fn):
        fn()  # warm module-level layout/template caches
        start = time.perf_counter()
        results = fn()
        return results, time.perf_counter() - start

    legacy_grid, legacy_wall = timed(percorner_legacy)
    batch_grid, batch_wall = timed(percorner_batches)
    fused_grid, fused_wall = timed(fused)
    identical = all(
        _results_match(a, b) and _results_match(a, c)
        for la, lb, lc in zip(legacy_grid, batch_grid, fused_grid)
        for a, b, c in zip(la, lb, lc)
    )
    cells = population * len(corners)
    return {
        "workload": f"{population} candidates x {len(corners)} corners "
                    f"({cells} evaluations)",
        "percorner_legacy_cands_per_s": round(cells / legacy_wall, 1),
        "percorner_batch_cands_per_s": round(cells / batch_wall, 1),
        "fused_cands_per_s": round(cells / fused_wall, 1),
        "speedup_fused_vs_percorner_legacy": round(legacy_wall / fused_wall, 2),
        "speedup_fused_vs_percorner_batches": round(batch_wall / fused_wall, 2),
        "identical_results": identical,
    }


def stage_dc_batch(population: int) -> dict:
    """Population lockstep DC Newton vs the chained warm-start walk.

    The acceptance workload: ``population`` random candidates through the
    sequential half of an evaluation (bench build + DC Newton + power
    read-out + linearization).  The chained side walks them one at a time
    through ``HybridEvaluator._stage_equation`` with its warm-start chain;
    the batched side stages the identical list through one
    ``solve_dc_batch`` lockstep block.  The kernels are *not*
    bit-identical (cold-start lockstep trajectories differ from the warm
    chain), so equivalence is checked the way campaigns consume results:
    both kernels must score the same feasibility set and pick the same
    argmin-cost winner on full evaluations, with finite costs close in
    relative terms.  The batched pass's Newton telemetry is embedded so
    ``--check`` can assert the counters account for every member.
    """
    mdac = _block_spec()
    space = two_stage_space(mdac, CMOS025)
    rng = np.random.default_rng(17)
    sizings = [space.decode(rng.random(space.dimension)) for _ in range(population)]

    chained = HybridEvaluator(mdac, CMOS025, kernel="compiled")
    batched = HybridEvaluator(mdac, CMOS025, kernel="compiled",
                              dc_kernel="batched")

    def chained_pass():
        chained._warm_x = None  # each pass walks a fresh population
        return [chained._stage_equation(s) for s in sizings]

    def batched_pass():
        return batched._stage_batched(sizings)

    def best_wall(fn, repeats=5):
        fn()  # warm layout/template caches
        walls = []
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            walls.append(time.perf_counter() - start)
        return min(walls)

    chained_wall = best_wall(chained_pass)
    reset_newton_stats()
    batched_wall = best_wall(batched_pass)
    telemetry = dict(NEWTON_STATS)

    # Winner-equivalence on full evaluations through fresh evaluators.
    res_chained = HybridEvaluator(mdac, CMOS025).evaluate_batch(sizings)
    res_batched = HybridEvaluator(
        mdac, CMOS025, dc_kernel="batched"
    ).evaluate_batch(sizings)
    costs_chained = [r.cost() for r in res_chained]
    costs_batched = [r.cost() for r in res_batched]
    winner_chained = int(np.argmin(costs_chained))
    winner_batched = int(np.argmin(costs_batched))
    feasibility_agrees = all(
        np.isfinite(a) == np.isfinite(b)
        for a, b in zip(costs_chained, costs_batched)
    )
    finite = [
        (a, b) for a, b in zip(costs_chained, costs_batched)
        if np.isfinite(a) and np.isfinite(b)
    ]
    max_rel_cost_diff = max(
        (abs(a - b) / max(abs(a), abs(b)) for a, b in finite), default=0.0
    )
    # The lockstep counters must account for every member of every
    # measured pass (best_wall runs 1 warm + 5 measured passes): a member
    # either converges in lockstep or takes the scalar fallback
    # (``failures`` being the subset of fallbacks that also lost the
    # scalar walk).
    passes = 6
    telemetry_accounts = (
        telemetry["lockstep_members"] == passes * population
        and telemetry["converged"] + telemetry["fallbacks"]
        == telemetry["lockstep_members"]
    )
    return {
        "workload": f"{population}-candidate DC staging "
                    "(bench + Newton + linearize), best of 5",
        "chained_cands_per_s": round(population / chained_wall, 1),
        "batched_cands_per_s": round(population / batched_wall, 1),
        "wall_chained_s": round(chained_wall, 4),
        "wall_batched_s": round(batched_wall, 4),
        "speedup_dc_stage": round(chained_wall / batched_wall, 2),
        "winner_chained": winner_chained,
        "winner_batched": winner_batched,
        "winner_equivalent": winner_chained == winner_batched,
        "feasibility_agrees": feasibility_agrees,
        "max_rel_cost_diff": float(max_rel_cost_diff),
        "telemetry": telemetry,
        "telemetry_accounts_for_members": telemetry_accounts,
    }


def stage_template_cache() -> dict:
    """Persisted stamp programs: a warm worker must not compile at all.

    Simulates a pool/queue worker restart: compile into an on-disk
    :class:`~repro.analysis.template.TemplateStore`, wipe the in-process
    cache (a fresh interpreter has an empty one), and re-evaluate.  The
    warm pass must report zero compiles — templates load from the store.
    """
    mdac = _block_spec()
    space = two_stage_space(mdac, CMOS025)
    rng = np.random.default_rng(13)
    sizings = [space.decode(rng.random(space.dimension)) for _ in range(4)]

    def evaluate(store_dir):
        evaluator = HybridEvaluator(
            mdac, CMOS025, kernel="compiled", template_store=store_dir
        )
        return [evaluator.evaluate(s) for s in sizings]

    with tempfile.TemporaryDirectory() as store_dir:
        _TEMPLATE_CACHE.clear()
        reset_template_stats()
        start = time.perf_counter()
        cold = evaluate(store_dir)
        cold_wall = time.perf_counter() - start
        cold_stats = dict(TEMPLATE_STATS)

        _TEMPLATE_CACHE.clear()  # a freshly forked worker starts empty
        reset_template_stats()
        start = time.perf_counter()
        warm = evaluate(store_dir)
        warm_wall = time.perf_counter() - start
        warm_stats = dict(TEMPLATE_STATS)

    identical = all(_results_match(a, b) for a, b in zip(cold, warm))
    return {
        "workload": f"{len(sizings)} evaluations, cold store vs warm rerun",
        "cold_compiled": cold_stats["compiled"],
        "warm_compiled": warm_stats["compiled"],
        "warm_store_hits": warm_stats["store_hits"],
        "wall_cold_s": round(cold_wall, 3),
        "wall_warm_s": round(warm_wall, 3),
        "identical_results": identical,
    }


def stage_behavioral(draws: int, samples: int) -> dict:
    """Vectorized Monte-Carlo pipeline simulation vs the scalar walk.

    Same seeded mismatch draws and the same coherent stimulus through both
    behavioral kernels.  ``draw_error_models`` is called once per kernel so
    each gets identically-seeded fresh generators — the thermal-noise
    streams, not just the static mismatches, must replay bit-for-bit.
    The 256-draw speedup floor in ``--check`` is the PR 7 acceptance bar.
    """
    spec = AdcSpec(resolution_bits=10)
    candidate = next(c for c in enumerate_candidates(10) if c.label == "3-2")
    plan = plan_stages(spec, candidate)
    cycles = pick_coherent_cycles(samples)
    stimulus = full_scale_sine(samples, cycles, spec.full_scale)

    def run(kernel):
        models, rngs = draw_error_models(plan, draws, 101)
        simulate_draws(  # warm numpy/module caches
            candidate, spec.full_scale, models[:1], stimulus, rngs=rngs[:1],
            kernel=kernel,
        )
        models, rngs = draw_error_models(plan, draws, 101)
        start = time.perf_counter()
        result = simulate_draws(
            candidate, spec.full_scale, models, stimulus, rngs=rngs,
            kernel=kernel,
        )
        return result, time.perf_counter() - start

    legacy, legacy_wall = run("legacy")
    batch, batch_wall = run("batch")
    identical = all(
        np.array_equal(getattr(legacy, field), getattr(batch, field))
        for field in ("stage_codes", "residues", "backend_codes", "codes")
    )
    conversions = draws * samples
    return {
        "workload": f"{draws} mismatch draws x {samples}-sample coherent "
                    f"capture, 10-bit '3-2' pipeline",
        "legacy_conversions_per_s": round(conversions / legacy_wall, 1),
        "batch_conversions_per_s": round(conversions / batch_wall, 1),
        "wall_legacy_s": round(legacy_wall, 3),
        "wall_batch_s": round(batch_wall, 3),
        "speedup": round(legacy_wall / batch_wall, 2),
        "identical_results": identical,
    }


def stage_speculation(synth: dict, budget: int) -> dict:
    """Does speculation earn a default?  Receipts for the shipped value.

    The shipped default is ``SPECULATION_AUTO``: ``synthesize_mdac``
    resolves it per DC kernel — off under the chained warm-start walk
    (whose DC stage cannot batch across proposals), depth 8 under the
    batched lockstep kernel (whose cold-start block solve can).  Both
    sides are re-measured here: the chained pair reuses the
    ``synthesize_mdac`` walls, the batched pair runs fresh, and each
    verdict gets its own ~10% hysteresis band so a noisy tie can't flip
    it either way.
    """
    if "error" in synth:
        raise RuntimeError("synthesize_mdac stage failed; no walls to compare")
    chained_speedup = round(
        synth["wall_compiled_s"] / synth["wall_speculative_s"], 3
    )
    plain_b, plain_b_wall = _time_synthesize(
        "compiled", budget, dc_kernel="batched"
    )
    spec_b, spec_b_wall = _time_synthesize(
        "compiled", budget, speculation=8, dc_kernel="batched"
    )
    batched_speedup = round(plain_b_wall / spec_b_wall, 3)
    batched_identical = (
        sizing_digest(plain_b) == sizing_digest(spec_b)
        and plain_b.history == spec_b.history
    )
    default = FlowConfig.eval_speculation
    # Auto (< 0) resolves per kernel; each side checks its own band.
    chained_on = default > 1
    batched_on = default > 1 or default < 0
    chained_ok = chained_speedup > 0.95 if chained_on else chained_speedup < 1.10
    batched_ok = batched_speedup > 0.95 if batched_on else batched_speedup < 1.10
    return {
        "workload": synth["workload"] + " (chained walls shared with "
                    "synthesize_mdac; batched pair measured fresh)",
        "wall_plain_chained_s": synth["wall_compiled_s"],
        "wall_speculative_chained_s": synth["wall_speculative_s"],
        "speedup_speculative_chained": chained_speedup,
        "wall_plain_batched_s": round(plain_b_wall, 3),
        "wall_speculative_batched_s": round(spec_b_wall, 3),
        "speedup_speculative_batched": batched_speedup,
        "default_eval_speculation": default,
        "default_matches_measurement": chained_ok and batched_ok,
        "identical_results": synth["identical_results"] and batched_identical,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny budgets for CI (seconds, not minutes)")
    parser.add_argument("--out", default="BENCH_PR10.json",
                        help="output JSON path (default: BENCH_PR10.json)")
    parser.add_argument("--check", action="store_true",
                        help="exit nonzero if compiled is slower than legacy "
                             "or any result diverges")
    args = parser.parse_args(argv)

    # Pin the BLAS/OpenMP pools exactly like the pooled backends do, and
    # record the effective values so a BENCH artifact states the thread
    # configuration it was measured under.
    blas_threads = pin_blas_threads()

    budget = 120 if args.smoke else 400
    repeats = 10 if args.smoke else 30
    population = 16 if args.smoke else 48
    identical = 6 if args.smoke else 8
    distinct = 8 if args.smoke else 16
    # The 256-draw point is the acceptance workload — smoke only trims the
    # capture length, never the draw count the 5x floor is defined at.
    behavioral_draws = 256
    behavioral_samples = 512 if args.smoke else 2048
    # Same story for the DC lockstep: its 1.5x floor is defined at the
    # 48-candidate population (amortization shrinks with the block), so
    # smoke keeps the full population — the stage runs in ~0.5 s anyway.
    dc_population = 48

    # Each stage runs in its own guard: a raising benchmark must not
    # silently truncate the JSON.  The error is recorded in the stage's
    # slot (so CI artifacts show *which* stage died and why) and the run
    # exits non-zero after writing the partial report.
    # bench_service/bench_fabric sit next to this script; script-dir
    # imports resolve them.
    from bench_fabric import check_fabric_report, run_fabric_benchmark
    from bench_obs import check_obs_report, run_obs_benchmark
    from bench_service import check_service_report, run_service_benchmark

    # Fabric probes measure dispatch concurrency (off-CPU service time),
    # so smoke only trims the probe count and service time — the 1.5x
    # two-worker floor holds at either scale.
    fabric_kwargs = (
        dict(tasks=6, busy_s=0.2, identity_jobs=3, budget=60)
        if args.smoke
        else dict(tasks=10, busy_s=0.3, identity_jobs=4, budget=120)
    )

    stage_fns = {
        "synthesize_mdac": lambda: stage_synthesize(budget),
        "equation_metric_stage": lambda: stage_equation_metrics(repeats),
        "evaluate_batch": lambda: stage_batch_api(population),
        "corner_tensor": lambda: stage_corner_tensor(population),
        "dc_batch": lambda: stage_dc_batch(dc_population),
        "template_cache": stage_template_cache,
        "behavioral": lambda: stage_behavioral(
            behavioral_draws, behavioral_samples
        ),
        # Runs after synthesize_mdac (dict order) and reuses its walls.
        "speculation": lambda: stage_speculation(
            stages["synthesize_mdac"], budget
        ),
        "service": lambda: run_service_benchmark(identical, distinct),
        "fabric": lambda: run_fabric_benchmark(**fabric_kwargs),
        # Telemetry overhead holds its floor at the full DC population;
        # smoke trims only the sample count.
        "obs": lambda: run_obs_benchmark(
            dc_population, repeats=5 if args.smoke else 9
        ),
    }
    stages: dict[str, dict] = {}
    stage_errors: list[str] = []
    for name, stage_fn in stage_fns.items():
        try:
            stages[name] = stage_fn()
        except Exception:
            stages[name] = {"error": traceback.format_exc()}
            stage_errors.append(name)

    report = {
        "bench": "PR10 unified observability tier",
        "config": {
            "smoke": args.smoke,
            "budget": budget,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "blas_threads": blas_threads,
        },
        "stages": stages,
    }

    out_path = Path(args.out)
    out_path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(report, indent=2))

    if stage_errors:
        for name in stage_errors:
            print(f"BENCH FAILED: stage {name!r} raised (see {out_path})",
                  file=sys.stderr)
        return 1

    synth = report["stages"]["synthesize_mdac"]
    eqn = report["stages"]["equation_metric_stage"]
    corner = report["stages"]["corner_tensor"]
    dc_batch = report["stages"]["dc_batch"]
    template = report["stages"]["template_cache"]
    behavioral = report["stages"]["behavioral"]
    speculation = report["stages"]["speculation"]
    service = report["stages"]["service"]
    fabric = report["stages"]["fabric"]
    obs = report["stages"]["obs"]
    print(
        f"\nfull-candidate speedup: {synth['speedup_full_candidate']}x, "
        f"equation-metric stage: {eqn['speedup']}x, "
        f"corner tensor: {corner['speedup_fused_vs_percorner_legacy']}x, "
        f"dc batch: {dc_batch['speedup_dc_stage']}x "
        f"(winner-equivalent={dc_batch['winner_equivalent']}), "
        f"warm template compiles: {template['warm_compiled']}, "
        f"behavioral batch: {behavioral['speedup']}x, "
        f"speculation: {speculation['speedup_speculative_chained']}x chained / "
        f"{speculation['speedup_speculative_batched']}x batched "
        f"(default={speculation['default_eval_speculation']}), "
        f"service: {service['coalescing']['submissions']} identical submissions "
        f"-> {service['coalescing']['cold_synthesis_runs']} cold synthesis, "
        f"{service['throughput']['jobs_per_s']} jobs/s, "
        f"fabric: {fabric['throughput']['speedup_two_vs_one']}x at 2 workers "
        f"({fabric['lease_overhead']['median_ms']}ms lease overhead, "
        f"reclaim in {fabric['reclaim']['seconds_to_reclaim']}s), "
        f"obs: {obs['overhead_metrics_pct']}% metrics / "
        f"{obs['overhead_trace_pct']}% trace overhead "
        f"({obs['spans_written']} spans) -> {out_path}"
    )

    if args.check:
        failures = []
        if not synth["identical_results"]:
            failures.append("synthesize_mdac results diverged across kernels")
        if not eqn["identical_results"]:
            failures.append("batched AC sweep diverged from the legacy loop")
        if synth["speedup_full_candidate"] < 1.0:
            failures.append(
                "regression: compiled kernel slower than legacy on the "
                f"smoke workload ({synth['speedup_full_candidate']}x)"
            )
        if not corner["identical_results"]:
            failures.append(
                "fused corner tensor diverged from the per-corner walks"
            )
        if corner["speedup_fused_vs_percorner_legacy"] < 1.5:
            failures.append(
                "regression: fused candidates x corners solve under its "
                "1.5x floor vs per-corner legacy loops "
                f"({corner['speedup_fused_vs_percorner_legacy']}x)"
            )
        if dc_batch["speedup_dc_stage"] < 1.5:
            failures.append(
                "regression: batched DC lockstep under its 1.5x floor vs "
                f"the chained warm-start walk ({dc_batch['speedup_dc_stage']}x)"
            )
        if not dc_batch["winner_equivalent"]:
            failures.append(
                "batched DC kernel picked a different population winner "
                f"(chained #{dc_batch['winner_chained']} vs batched "
                f"#{dc_batch['winner_batched']})"
            )
        if not dc_batch["feasibility_agrees"]:
            failures.append(
                "batched DC kernel disagrees with chained on feasibility"
            )
        if not dc_batch["telemetry_accounts_for_members"]:
            failures.append(
                "Newton telemetry does not account for every lockstep "
                f"member ({dc_batch['telemetry']})"
            )
        if template["warm_compiled"] != 0:
            failures.append(
                "template store miss: a warm worker still compiled "
                f"{template['warm_compiled']} stamp program(s)"
            )
        if not template["identical_results"]:
            failures.append("store-loaded templates diverged from compiled ones")
        if not behavioral["identical_results"]:
            failures.append(
                "behavioral batch kernel diverged from the scalar walk"
            )
        if behavioral["speedup"] < 5.0:
            failures.append(
                "regression: behavioral batch kernel under its 5x floor "
                f"at 256 draws ({behavioral['speedup']}x)"
            )
        if not speculation["identical_results"]:
            failures.append("speculation diverged from the plain walk")
        if not speculation["default_matches_measurement"]:
            failures.append(
                "shipped FlowConfig.eval_speculation="
                f"{speculation['default_eval_speculation']} contradicts the "
                f"measurement ({speculation['speedup_speculative_chained']}x "
                f"chained / {speculation['speedup_speculative_batched']}x "
                "batched, speculative vs plain)"
            )
        failures.extend(check_service_report(service))
        failures.extend(check_fabric_report(fabric))
        failures.extend(check_obs_report(obs))
        if failures:
            for failure in failures:
                print(f"CHECK FAILED: {failure}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
