"""Run the standalone benchmark suite and emit ``BENCH_PR3.json``.

Standalone (no pytest): fixed seeds, deterministic workloads, wall-clock
measurements of the compiled evaluation kernels against the legacy path,
plus the optimization-service stage (submission latency, coalescing hit
rate, sustained jobs/s — see ``benchmarks/bench_service.py``).

    PYTHONPATH=src python benchmarks/run_all.py                # full
    PYTHONPATH=src python benchmarks/run_all.py --smoke        # CI smoke
    PYTHONPATH=src python benchmarks/run_all.py --check ...    # exit 1 on
                                                               # regression

``--check`` is the CI regression guard: it fails the run when the compiled
kernel is slower than the legacy path on the same workload, when any
variant's synthesis result diverges (the bit-identity contract), or when
the service stage breaks its coalescing contract (N identical concurrent
submissions must perform exactly one cold synthesis).

A stage that *raises* is recorded in its JSON slot as ``{"error": ...}``
and the run exits non-zero after writing the (partial) report — CI fails
loudly instead of uploading a silently truncated BENCH artifact.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
import traceback
from pathlib import Path

import numpy as np

from repro.analysis.ac import ac_system_stack, ac_transfer, solve_ac_stack
from repro.analysis.mna import layout_cache_disabled
from repro.engine.persist import sizing_digest
from repro.enumeration.candidates import PipelineCandidate
from repro.specs import AdcSpec, plan_stages
from repro.synth import HybridEvaluator, synthesize_mdac, two_stage_space
from repro.synth.evaluator import _AC_FREQS
from repro.tech import CMOS025


def _block_spec():
    spec = AdcSpec(resolution_bits=13)
    plan = plan_stages(spec, PipelineCandidate((4, 3, 2), 13, 7))
    return plan.mdacs[2]


def _time_synthesize(kernel: str, budget: int, speculation: int = 0,
                     seed_baseline: bool = False):
    mdac = _block_spec()

    def run():
        start = time.perf_counter()
        result = synthesize_mdac(
            mdac,
            CMOS025,
            budget=budget,
            seed=1,
            verify_transient=False,
            kernel=kernel,
            speculation=speculation,
        )
        return result, time.perf_counter() - start

    if seed_baseline:
        with layout_cache_disabled():
            run()  # warm module/caches
            result, wall = run()
    else:
        run()
        result, wall = run()
    return result, wall


def stage_synthesize(budget: int) -> dict:
    """Full-candidate equation-evaluation throughput per kernel."""
    legacy, legacy_wall = _time_synthesize("legacy", budget, seed_baseline=True)
    compiled_, compiled_wall = _time_synthesize("compiled", budget)
    speculative, spec_wall = _time_synthesize("compiled", budget, speculation=8)
    identical = (
        sizing_digest(legacy) == sizing_digest(compiled_) == sizing_digest(speculative)
        and legacy.history == compiled_.history == speculative.history
        and legacy.equation_evals == compiled_.equation_evals
    )
    evals = compiled_.equation_evals
    return {
        "workload": f"synthesize_mdac(2b@8b, budget={budget}, seed=1, anneal+polish)",
        "equation_evals": evals,
        "legacy_cands_per_s": round(evals / legacy_wall, 1),
        "compiled_cands_per_s": round(evals / compiled_wall, 1),
        "speculative_cands_per_s": round(evals / spec_wall, 1),
        "wall_legacy_s": round(legacy_wall, 3),
        "wall_compiled_s": round(compiled_wall, 3),
        "wall_speculative_s": round(spec_wall, 3),
        "speedup_full_candidate": round(legacy_wall / compiled_wall, 2),
        "identical_results": identical,
    }


def stage_equation_metrics(repeats: int) -> dict:
    """The AC/transfer-function stage: per-frequency loop vs batched stack."""
    mdac = _block_spec()
    space = two_stage_space(mdac, CMOS025)
    evaluator = HybridEvaluator(mdac, CMOS025, kernel="compiled")
    rng = np.random.default_rng(1)
    staged = evaluator._stage_equation(space.decode(rng.random(space.dimension)))
    lin = staged.lin

    def legacy_stage():
        return ac_transfer(lin, "out", _AC_FREQS, batched=False)

    def batched_stage():
        stack = ac_system_stack(lin, _AC_FREQS)
        return solve_ac_stack(stack, lin.b_ac, _AC_FREQS)[:, lin.index("out")]

    identical = bool(np.array_equal(legacy_stage(), batched_stage()))

    def rate(fn):
        fn()
        start = time.perf_counter()
        for _ in range(repeats):
            fn()
        return repeats / (time.perf_counter() - start)

    legacy_rate, batched_rate = rate(legacy_stage), rate(batched_stage)
    return {
        "workload": f"{len(_AC_FREQS)}-point AC sweep of the opamp testbench",
        "legacy_sweeps_per_s": round(legacy_rate, 1),
        "batched_sweeps_per_s": round(batched_rate, 1),
        "speedup": round(batched_rate / legacy_rate, 2),
        "identical_results": identical,
    }


def stage_batch_api(population: int) -> dict:
    """evaluate_batch population scoring vs sequential evaluate."""
    mdac = _block_spec()
    space = two_stage_space(mdac, CMOS025)
    rng = np.random.default_rng(7)
    sizings = [space.decode(rng.random(space.dimension)) for _ in range(population)]

    def run(kernel, batch):
        evaluator = HybridEvaluator(mdac, CMOS025, kernel=kernel)
        evaluator.evaluate(sizings[0])  # warm caches
        evaluator2 = HybridEvaluator(mdac, CMOS025, kernel=kernel)
        start = time.perf_counter()
        if batch:
            results = evaluator2.evaluate_batch(sizings)
        else:
            results = [evaluator2.evaluate(s) for s in sizings]
        return results, time.perf_counter() - start

    sequential, seq_wall = run("legacy", batch=False)
    batched, batch_wall = run("compiled", batch=True)
    identical = all(
        a.cost() == b.cost() and a.violations == b.violations
        for a, b in zip(sequential, batched)
    )
    return {
        "workload": f"population of {population} random candidates",
        "legacy_sequential_cands_per_s": round(population / seq_wall, 1),
        "compiled_batch_cands_per_s": round(population / batch_wall, 1),
        "speedup": round(seq_wall / batch_wall, 2),
        "identical_results": identical,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny budgets for CI (seconds, not minutes)")
    parser.add_argument("--out", default="BENCH_PR3.json",
                        help="output JSON path (default: BENCH_PR3.json)")
    parser.add_argument("--check", action="store_true",
                        help="exit nonzero if compiled is slower than legacy "
                             "or any result diverges")
    args = parser.parse_args(argv)

    budget = 120 if args.smoke else 400
    repeats = 10 if args.smoke else 30
    population = 16 if args.smoke else 48
    identical = 6 if args.smoke else 8
    distinct = 8 if args.smoke else 16

    # Each stage runs in its own guard: a raising benchmark must not
    # silently truncate the JSON.  The error is recorded in the stage's
    # slot (so CI artifacts show *which* stage died and why) and the run
    # exits non-zero after writing the partial report.
    # bench_service sits next to this script; script-dir imports resolve it.
    from bench_service import check_service_report, run_service_benchmark

    stage_fns = {
        "synthesize_mdac": lambda: stage_synthesize(budget),
        "equation_metric_stage": lambda: stage_equation_metrics(repeats),
        "evaluate_batch": lambda: stage_batch_api(population),
        "service": lambda: run_service_benchmark(identical, distinct),
    }
    stages: dict[str, dict] = {}
    stage_errors: list[str] = []
    for name, stage_fn in stage_fns.items():
        try:
            stages[name] = stage_fn()
        except Exception:
            stages[name] = {"error": traceback.format_exc()}
            stage_errors.append(name)

    report = {
        "bench": "PR3 compiled evaluation kernels",
        "config": {
            "smoke": args.smoke,
            "budget": budget,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "stages": stages,
    }

    out_path = Path(args.out)
    out_path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(report, indent=2))

    if stage_errors:
        for name in stage_errors:
            print(f"BENCH FAILED: stage {name!r} raised (see {out_path})",
                  file=sys.stderr)
        return 1

    synth = report["stages"]["synthesize_mdac"]
    eqn = report["stages"]["equation_metric_stage"]
    service = report["stages"]["service"]
    print(
        f"\nfull-candidate speedup: {synth['speedup_full_candidate']}x, "
        f"equation-metric stage: {eqn['speedup']}x, "
        f"service: {service['coalescing']['submissions']} identical submissions "
        f"-> {service['coalescing']['cold_synthesis_runs']} cold synthesis, "
        f"{service['throughput']['jobs_per_s']} jobs/s -> {out_path}"
    )

    if args.check:
        failures = []
        if not synth["identical_results"]:
            failures.append("synthesize_mdac results diverged across kernels")
        if not eqn["identical_results"]:
            failures.append("batched AC sweep diverged from the legacy loop")
        if synth["speedup_full_candidate"] < 1.0:
            failures.append(
                "regression: compiled kernel slower than legacy on the "
                f"smoke workload ({synth['speedup_full_candidate']}x)"
            )
        failures.extend(check_service_report(service))
        if failures:
            for failure in failures:
                print(f"CHECK FAILED: {failure}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
