"""Ablation: robustness of the winners to the noise-allocation heuristic.

The spec translation splits the thermal-noise budget geometrically with
ratio ``r`` per stage (calibrated r = 0.85).  This bench sweeps r and
reports which conclusions are robust and which live inside the near-tie
margins: the 10-bit (3-2) and 12-bit (4-2-2) winners and the 4-bit-first
family at 13 bits hold everywhere; the exact 13-bit tail split (4-3-2 vs
4-2-2-2) needs r >= 0.7, and the 11-bit near-tie flips with r — matching
how close the paper's own bars are at those points.
"""

from repro.enumeration import enumerate_candidates
from repro.power import candidate_power
from repro.specs import AdcSpec
from repro.specs.noise_budget import allocate_noise_budget
from repro.specs.stage import plan_stages


def winners_for_ratio(r: float) -> dict[int, str]:
    winners = {}
    for k in (10, 11, 12, 13):
        spec = AdcSpec(resolution_bits=k)
        rows = []
        for cand in enumerate_candidates(k):
            budget = allocate_noise_budget(spec, cand, stage_ratio=r)
            plan = plan_stages(spec, cand, budget)
            rows.append((candidate_power(spec, cand, plan=plan).total_power, cand.label))
        winners[k] = min(rows)[1]
    return winners


def sweep(ratios=(0.5, 0.7, 0.85, 1.0)) -> dict[float, dict[int, str]]:
    return {r: winners_for_ratio(r) for r in ratios}


def test_allocation_robustness(once):
    table = once(sweep)
    print()
    for r, winners in table.items():
        print(f"  r={r}: {winners}")
    for winners in table.values():
        # Fully robust conclusions across the allocation sweep:
        assert winners[10] == "3-2"
        assert winners[12] == "4-2-2"
        assert winners[13].startswith("4")  # 4-bit first stage at 13 bits
        assert winners[13].endswith("2")  # 1.5-bit last stage at 13 bits
    # The exact 13-bit tail split holds for the calibrated region.
    assert table[0.85][13] == "4-3-2"
    assert table[1.0][13] == "4-3-2"
