"""Compiled evaluation kernels: legacy vs compiled vs speculative-batched.

The PR 3 tentpole claim, measured three ways on a standard
``synthesize_mdac`` workload (cold anneal, budget 400, fixed seed):

* **full-candidate throughput** — candidates/second through the whole
  equation evaluation (DC Newton + linearization + AC sweep + metrics),
  legacy walk vs compiled kernel;
* **equation-metric stage throughput** — the transfer-function stage
  alone (the paper's "formulate the numerical transfer function" step):
  the seed solved it one frequency at a time through per-call
  ``np.linalg.solve``; the kernel solves the whole grid as one stacked
  batch.  This is where the batched-linear-solve tentpole lands its
  biggest factor (>= 3x is asserted here);
* **result identity** — every variant must produce bit-identical
  synthesis results (the determinism contract that lets the compiled
  kernel be the default).

The legacy variant runs under ``layout_cache_disabled`` so it also pays
the per-call :class:`~repro.analysis.mna.MnaLayout` derivation the
pre-kernel evaluator paid.  Numbers land in ``BENCH_PR6.json`` via
``benchmarks/run_all.py``.

PR 6 added the speculation receipt: the shipped
``FlowConfig.eval_speculation`` default is asserted against a fresh
measurement, so the default can only flip when this file proves it.
PR 8 re-ran that verdict on the batched DC kernel (whose cold-start
lockstep solves batch the DC stage across speculated proposals) and the
receipt split per kernel: the shipped default is now auto — on under
``dc_kernel='batched'``, off under ``'chained'``.
"""

import time

import numpy as np
import pytest

from repro.analysis.ac import ac_system_stack, ac_transfer, solve_ac_stack
from repro.analysis.mna import layout_cache_disabled
from repro.engine.config import SPECULATION_AUTO, FlowConfig
from repro.engine.persist import sizing_digest
from repro.enumeration.candidates import PipelineCandidate
from repro.specs import AdcSpec, plan_stages
from repro.synth import HybridEvaluator, synthesize_mdac, two_stage_space
from repro.synth.evaluator import _AC_FREQS
from repro.tech import CMOS025


def _block_spec():
    spec = AdcSpec(resolution_bits=13)
    plan = plan_stages(spec, PipelineCandidate((4, 3, 2), 13, 7))
    return plan.mdacs[2]  # the 2-bit stage: fastest standard block


def _synthesize(kernel: str, budget: int = 400, speculation: int = 0,
                dc_kernel: str = "chained"):
    mdac = _block_spec()
    start = time.perf_counter()
    result = synthesize_mdac(
        mdac,
        CMOS025,
        budget=budget,
        seed=1,
        verify_transient=False,
        kernel=kernel,
        speculation=speculation,
        dc_kernel=dc_kernel,
    )
    wall = time.perf_counter() - start
    return result, result.equation_evals / wall


@pytest.mark.slow
def test_kernel_throughput_and_identity(once):
    """Compiled >= 2x legacy on full candidates, with identical results."""
    with layout_cache_disabled():
        legacy, legacy_rate = _synthesize("legacy")
    compiled_run = once(lambda: _synthesize("compiled"))
    compiled, compiled_rate = compiled_run
    speculative, speculative_rate = _synthesize("compiled", speculation=8)

    print(
        f"\nlegacy:      {legacy_rate:7.1f} cand/s"
        f"\ncompiled:    {compiled_rate:7.1f} cand/s"
        f" ({compiled_rate / legacy_rate:.2f}x)"
        f"\nspeculative: {speculative_rate:7.1f} cand/s"
    )
    # Bit-identical synthesis outcomes across every variant.
    assert sizing_digest(compiled) == sizing_digest(legacy)
    assert sizing_digest(speculative) == sizing_digest(legacy)
    assert compiled.history == legacy.history == speculative.history
    assert compiled.equation_evals == legacy.equation_evals
    # Wall-clock: the compiled kernel must clearly beat the legacy walk.
    assert compiled_rate >= 2.0 * legacy_rate


@pytest.mark.slow
def test_equation_metric_stage_speedup():
    """The batched AC sweep is >= 3x the per-frequency legacy loop."""
    mdac = _block_spec()
    space = two_stage_space(mdac, CMOS025)
    evaluator = HybridEvaluator(mdac, CMOS025, kernel="compiled")
    rng = np.random.default_rng(1)
    staged = evaluator._stage_equation(space.decode(rng.random(space.dimension)))
    assert staged.lin is not None
    lin = staged.lin

    def legacy_stage():
        return ac_transfer(lin, "out", _AC_FREQS, batched=False)

    def batched_stage():
        stack = ac_system_stack(lin, _AC_FREQS)
        return solve_ac_stack(stack, lin.b_ac, _AC_FREQS)[:, lin.index("out")]

    # Identical transfer vectors, slice for slice.
    assert np.array_equal(legacy_stage(), batched_stage())

    def rate(fn, repeats=30):
        fn()
        start = time.perf_counter()
        for _ in range(repeats):
            fn()
        return repeats / (time.perf_counter() - start)

    legacy_rate = rate(legacy_stage)
    batched_rate = rate(batched_stage)
    speedup = batched_rate / legacy_rate
    print(
        f"\nequation-metric stage: legacy {legacy_rate:6.1f}/s, "
        f"batched {batched_rate:6.1f}/s -> {speedup:.2f}x"
    )
    assert speedup >= 3.0


@pytest.mark.slow
def test_speculation_earns_its_default():
    """The shipped ``eval_speculation`` default must match the measurement.

    PR 6 measured speculation on the chained DC kernel and shipped it off:
    the warm-start-dependent DC walk cannot batch across proposals, so a
    speculated batch only ties the serial walk and every discarded
    proposal is pure loss.  PR 8's batched lockstep kernel removes exactly
    that constraint — its cold-start trajectories are order-independent,
    so a speculated batch solves its whole DC block in one lockstep call —
    and the verdict flips *on that kernel only*.  The shipped default is
    therefore ``SPECULATION_AUTO``: depth 8 under ``dc_kernel='batched'``,
    0 under ``'chained'``, each side re-measured here against its own
    hysteresis band (decisive win >= 1.10x to turn on, decisive loss
    <= 0.95x to turn back off) so a noisy tie cannot flip either verdict.
    """
    assert FlowConfig.eval_speculation == SPECULATION_AUTO

    verdicts = []
    for dc_kernel in ("chained", "batched"):
        plain, plain_rate = _synthesize("compiled", dc_kernel=dc_kernel)
        speculative, speculative_rate = _synthesize(
            "compiled", speculation=8, dc_kernel=dc_kernel
        )
        # Speculation stays bit-identical on both kernels.
        assert sizing_digest(speculative) == sizing_digest(plain)
        assert speculative.history == plain.history
        speedup = speculative_rate / plain_rate
        verdicts.append((dc_kernel, speedup))
        print(
            f"\nspeculation[{dc_kernel}]: plain {plain_rate:7.1f} cand/s, "
            f"speculative {speculative_rate:7.1f} cand/s -> {speedup:.2f}x"
        )

    (_, chained_speedup), (_, batched_speedup) = verdicts
    # Auto resolves to 0 on chained: fine unless speculation decisively
    # wins there too (then auto should turn it on everywhere).
    assert chained_speedup < 1.10, (
        f"speculation now wins decisively on the chained kernel "
        f"({chained_speedup:.2f}x); resolve auto to 'on' for both kernels"
    )
    # Auto resolves to 8 on batched: fine unless speculation lost its edge.
    assert batched_speedup > 0.95, (
        f"speculation lost its edge on the batched kernel "
        f"({batched_speedup:.2f}x); resolve auto back to 0 there"
    )
