"""Ablation: the paper's enumeration constraints vs relaxed design spaces.

Quantifies how much the m_i <= 4 bandwidth rule, the monotone (m_i >=
m_{i+1}) area rule, and the 7-bit backend cut shrink the candidate set —
and confirms the constraints do not exclude the true optimum.
"""

from repro.enumeration import enumerate_candidates, enumerate_full_pipelines
from repro.power import candidate_power
from repro.specs import AdcSpec


def count_spaces(k: int = 13) -> dict[str, int]:
    return {
        "paper": len(enumerate_candidates(k)),
        "non_monotone": len(enumerate_candidates(k, monotone=False)),
        "up_to_6bit_stages": len(enumerate_candidates(k, max_stage_bits=6)),
        "full_pipelines": len(enumerate_full_pipelines(k)),
        "full_non_monotone": len(enumerate_full_pipelines(k, monotone=False)),
    }


def test_constraint_reduction(benchmark):
    counts = benchmark(count_spaces)
    print(f"\n13-bit design-space sizes: {counts}")
    assert counts["paper"] == 7
    assert counts["non_monotone"] > counts["paper"]
    # Without the front-end cut *and* the ordering rule the space explodes
    # into hundreds of full pipelines — the reduction the paper relies on.
    assert counts["full_non_monotone"] > 40 * counts["paper"]


def test_monotone_rule_is_an_area_rule(once):
    """Relaxing m_i >= m_{i+1} exposes 4-2-3, marginally cheaper in power.

    The paper imposes the monotone rule "because of the area factor": a
    power-only model (ours) indeed finds the non-monotone 4-2-3 a few
    percent cheaper, which quantifies what the area rule trades away.
    """
    spec = AdcSpec(resolution_bits=13)

    def best_of(monotone: bool) -> tuple[str, float]:
        best = None
        for cand in enumerate_candidates(13, monotone=monotone):
            power = candidate_power(spec, cand).total_power
            if best is None or power < best[1]:
                best = (cand.label, power)
        return best

    strict = once(best_of, True)
    relaxed = best_of(False)
    print(f"\nmonotone winner: {strict}, relaxed winner: {relaxed}")
    assert strict[0] == "4-3-2"
    assert relaxed[0] == "4-2-3"
    # The power give-up of the area rule is small (< 5%).
    assert strict[1] <= relaxed[1] * 1.05
