"""Checkpointed-campaign benchmark: what interruption tolerance costs.

Three claims, measured on a synthesis grid:

* **checkpointing is cheap** — a store-backed campaign (manifest +
  per-scenario checkpoints + final store) pays only a small overhead over
  an in-memory run of the same grid;
* **resume is near-free** — resuming a completed store replays every
  scenario from its checkpoint (no backend dispatch, no synthesis) and
  reproduces the results byte-identically;
* **queue acks resume mid-scenario work** — with the ``queue`` backend, a
  rerun of an *unfinished* scenario replays its completed synthesis tasks
  from ack files instead of re-searching.
"""

import time

from repro.campaign import CampaignGrid, run_campaign
from repro.engine.config import FlowConfig
from repro.engine.workqueue import QueueBackend
from repro.engine.scheduler import run_synthesis_job

GRID = CampaignGrid(
    resolutions=(9, 10, 11),
    modes=("synthesis",),
)

#: Moderate budgets: enough search to make replay economics visible.
BUDGET = 400
RETARGET_BUDGET = 80


def _config(**overrides) -> FlowConfig:
    base = dict(
        budget=BUDGET, retarget_budget=RETARGET_BUDGET, verify_transient=False
    )
    base.update(overrides)
    return FlowConfig(**base)


def test_checkpoint_overhead_and_resume(tmp_path, once):
    # In-memory reference: no store, no checkpoints.
    start = time.perf_counter()
    plain = run_campaign(GRID, config=_config())
    plain_s = time.perf_counter() - start

    # Checkpointed run of the same grid.
    store = tmp_path / "store"
    start = time.perf_counter()
    checkpointed = run_campaign(GRID, config=_config(), store_dir=store)
    checkpointed_s = time.perf_counter() - start

    # Full-replay resume: every scenario comes back from its checkpoint.
    start = time.perf_counter()
    resumed = run_campaign(GRID, config=_config(), store_dir=store, resume=True)
    resume_s = time.perf_counter() - start

    print()
    print(f"Resume benchmark — {GRID.size} scenarios")
    print(f"  in-memory:     {plain_s:7.2f} s")
    print(
        f"  checkpointed:  {checkpointed_s:7.2f} s  "
        f"({checkpointed_s / plain_s - 1:+.1%} overhead)"
    )
    print(
        f"  full resume:   {resume_s:7.3f} s  "
        f"({plain_s / max(resume_s, 1e-9):.0f}x vs executing, "
        f"{resumed.replayed_scenarios}/{GRID.size} replayed)"
    )

    assert checkpointed.records == plain.records
    assert resumed.records == checkpointed.records
    assert resumed.replayed_scenarios == GRID.size
    # Checkpointing may not dominate the run; replay must be near-free.
    assert checkpointed_s < 1.5 * plain_s
    assert resume_s < 0.2 * plain_s

    once(run_campaign, GRID, config=_config(), store_dir=store, resume=True)


def test_queue_ack_replay_skips_finished_tasks(tmp_path, once):
    # One scenario's synthesis plan, dispatched twice through the same
    # queue directory: the second dispatch must replay every task.
    from repro.enumeration.candidates import PipelineCandidate
    from repro.specs import AdcSpec, plan_stages
    from repro.engine.scheduler import SynthesisJob

    spec = AdcSpec(resolution_bits=11)
    plan = plan_stages(spec, PipelineCandidate((3, 2, 2), 11, 6))
    jobs = [
        SynthesisJob(
            spec=mdac,
            tech=spec.tech,
            budget=BUDGET,
            seed=1,
            verify_transient=False,
        )
        for mdac in plan.mdacs
    ]

    queue_dir = tmp_path / "queue"
    with QueueBackend(max_workers=2, queue_dir=queue_dir) as backend:
        start = time.perf_counter()
        first = backend.map(run_synthesis_job, jobs)
        cold_s = time.perf_counter() - start
        executed = backend.executed

    with QueueBackend(max_workers=2, queue_dir=queue_dir) as backend:
        start = time.perf_counter()
        second = backend.map(run_synthesis_job, jobs)
        replay_s = time.perf_counter() - start
        replayed = backend.replayed

    print()
    print(f"Queue ack replay — {len(jobs)} synthesis tasks")
    print(f"  cold:    {cold_s:7.2f} s  ({executed} executed)")
    print(
        f"  replay:  {replay_s:7.3f} s  ({replayed} acks, "
        f"{cold_s / max(replay_s, 1e-9):.0f}x)"
    )

    # Deduplicated job list: every distinct task executed once cold, and
    # the second dispatch touched no search at all.
    assert executed > 0
    assert replayed == executed
    assert [r.final.sizing for r in second] == [r.final.sizing for r in first]
    assert replay_s < 0.2 * cold_s

    with QueueBackend(max_workers=2, queue_dir=queue_dir) as backend:
        once(backend.map, run_synthesis_job, jobs)
