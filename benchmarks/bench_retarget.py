"""Retargeting economy: cold synthesis vs warm-started re-synthesis.

Reproduces the shape of the paper's effort numbers (2-3 weeks cold setup vs
~1 day per retargeted block) as an optimizer-evaluation ratio.
"""

import pytest

from repro.experiments.runtime import format_runtime, retarget_economy


@pytest.mark.slow
def test_retarget_economy(once):
    economy = once(
        retarget_economy, cold_budget=400, retarget_budget=60, seed=3,
        verify_transient=True,
    )
    print()
    print(format_runtime(economy))
    # Order-of-magnitude fewer evaluations, both designs feasible.
    assert economy.eval_reduction >= 4.0
    assert economy.both_feasible
    # The retargeted block lands within 2x of a cold synthesis's power
    # (it solves a *harder* spec, 11-bit vs 10-bit accuracy).
    assert economy.retarget_power_mw < 10 * economy.cold_power_mw
