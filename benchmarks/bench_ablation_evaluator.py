"""Ablation: hybrid vs equation-only vs simulation-heavy evaluation.

The paper's argument is that hybrid evaluation (equations for the linear
metrics, simulation for the large-swing settling) is both fast and
trustworthy.  This bench times one synthesis per strategy on the same block
spec and compares outcome quality and transient usage.
"""

import pytest

from repro.enumeration.candidates import PipelineCandidate
from repro.specs import AdcSpec, plan_stages
from repro.synth import synthesize_mdac
from repro.synth.evaluator import HybridEvaluator
from repro.synth.space import two_stage_space
from repro.synth.anneal import anneal
from repro.tech import CMOS025


def _block_spec():
    spec = AdcSpec(resolution_bits=13)
    plan = plan_stages(spec, PipelineCandidate((4, 3, 2), 13, 7))
    return plan.mdacs[1]  # the 3-bit, 10-bit-accuracy stage


@pytest.mark.slow
def test_hybrid_vs_equation_only(once):
    mdac = _block_spec()

    def hybrid():
        return synthesize_mdac(mdac, CMOS025, budget=250, seed=5, verify_transient=True)

    result = once(hybrid)
    print(f"\nhybrid:        {result.summary()}")
    print(f"  equation evals: {result.equation_evals}, transients: {result.transient_evals}")
    # The hybrid runs orders of magnitude fewer transients than evaluations.
    assert result.transient_evals <= max(6, result.equation_evals // 20)
    assert result.feasible


@pytest.mark.slow
def test_simulation_every_candidate_is_slower(benchmark):
    """Running the transient on every annealing candidate costs ~10-100x."""
    mdac = _block_spec()
    space = two_stage_space(mdac, CMOS025)
    evaluator = HybridEvaluator(mdac, CMOS025, transient_points=200)

    def cost_with_transient(u):
        return evaluator.evaluate(space.decode(u), run_transient=True).cost()

    def tiny_sim_only_search():
        return anneal(cost_with_transient, space.dimension, budget=12, seed=5)

    run = benchmark.pedantic(tiny_sim_only_search, rounds=1, iterations=1)
    per_eval = benchmark.stats.stats.mean / 12
    print(f"\nsimulation-only: {per_eval*1e3:.1f} ms/eval "
          f"(equation-mode is typically ~5-10 ms/eval)")
    # A transient-per-candidate evaluation costs several times the hybrid's.
    assert per_eval > 0.01
