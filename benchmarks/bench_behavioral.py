"""System validation bench: the winning candidate converts at spec.

Runs the behavioral 13-bit 4-3-2 pipeline on a coherent sine and checks
ENOB, including with comparator offsets inside the redundancy margin (the
digital correction the per-stage redundant bit pays for).
"""

import numpy as np

from repro.behavioral import BehavioralPipeline, StageErrorModel, enob
from repro.behavioral.signals import full_scale_sine
from repro.enumeration.candidates import PipelineCandidate


def run_sine_test(pipeline: BehavioralPipeline, n: int = 4096, cycles: int = 479):
    signal = full_scale_sine(n, cycles, pipeline.full_scale)
    codes = pipeline.convert_array(signal)
    return enob(codes, cycles)


def test_ideal_432_pipeline_enob(benchmark):
    cand = PipelineCandidate((4, 3, 2), 13, 7)
    pipeline = BehavioralPipeline(cand)
    result = benchmark.pedantic(run_sine_test, args=(pipeline,), rounds=1, iterations=1)
    print(f"\nideal 4-3-2 13-bit pipeline: ENOB = {result:.2f} bits")
    assert result > 12.7


def test_432_pipeline_with_offsets_enob(once):
    cand = PipelineCandidate((4, 3, 2), 13, 7)
    rng = np.random.default_rng(11)
    errors = []
    for m in cand.resolutions:
        tol = 2.0 / 2 ** (m + 1)
        count = 2**m - 2
        offsets = tuple(rng.uniform(-0.8 * tol, 0.8 * tol, count))
        errors.append(StageErrorModel(comparator_offsets=offsets))
    pipeline = BehavioralPipeline(cand, stage_errors=tuple(errors))
    result = once(run_sine_test, pipeline)
    print(f"\n4-3-2 with 80%-of-margin comparator offsets: ENOB = {result:.2f} bits")
    # Redundancy absorbs the offsets: conversion stays near-ideal.
    assert result > 12.5
